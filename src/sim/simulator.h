// Deterministic discrete-event simulator.
//
// The simulator is the substrate that replaces wall-clock time and the
// physical cluster in this reproduction. Events are ordered by (time,
// schedule order) so that two events at the same timestamp always fire in
// scheduling order, making every run bit-reproducible for a fixed seed.
//
// Performance architecture (a simplified calendar queue):
//   - Event payloads (std::function closures) live in a slab of reusable
//     nodes; dispatch moves — never copies — the payload out of the slab.
//   - Events sharing a timestamp form an intrusive FIFO chain ("bucket")
//     through the slab, so same-time scheduling order is positional and
//     needs no comparisons at all.
//   - The priority queue is an owned 4-ary min-heap over *distinct pending
//     timestamps* only (one small closure-free entry per bucket), which for
//     the periodic workloads of training campaigns is far smaller than the
//     event count.
//   - An open-addressing hash table maps timestamp -> bucket in O(1), so
//     Schedule touches the heap only when a brand-new timestamp appears.
//   - Cancellation is O(1): EventIds carry the slab slot plus a generation
//     tag, and Cancel marks the node as a tombstone that is reclaimed (slot
//     recycled, closure released) when it reaches the head of its bucket.
//     Stale ids — already-dispatched, already-cancelled, or from a recycled
//     slot — fail the generation check and leave no state behind, so
//     cancellation storage is bounded by the number of genuinely pending
//     events.
//
// Threading model: a Simulator and everything scheduled on it are owned by
// exactly one campaign worker thread — the seed-parallel pools in the CLI
// share *nothing* mutable per seed (each worker builds its own simulator,
// cluster view, and system stack). The class is deliberately unsynchronized;
// the only process-wide state a simulation touches is the immutable frozen
// template caches (SharedTopology/SharedBackupPlan, annotated in
// src/topology/parallelism.h) and the log-level atomic (src/common/log.h).

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/sim_time.h"

namespace byterobust {

// Handle for a scheduled event; can be used to cancel it before it fires.
// Encodes (slab slot, generation) so stale handles are rejected in O(1).
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator();
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time.
  SimTime Now() const { return now_; }

  // Schedules `fn` to run `delay` after Now(). Negative delays clamp to zero
  // (the event fires "immediately", after already-queued events at Now()).
  EventId Schedule(SimDuration delay, std::function<void()> fn);

  // Schedules `fn` at an absolute time, which must be >= Now().
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  // Cancels a pending event. Returns true if the event existed and had not
  // fired yet. Cancelling an already-fired, already-cancelled or invalid id
  // is a no-op that returns false and stores nothing.
  bool Cancel(EventId id);

  // Runs until the event queue is empty or Stop() is called.
  void Run();

  // Runs events with time <= deadline, then advances the clock to exactly
  // `deadline` (even if no event fired there).
  void RunUntil(SimTime deadline);

  // Runs exactly one event if available; returns false when the queue is
  // empty. Useful for fine-grained tests.
  bool Step();

  // Requests that Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

  // True after Stop() until the next Run()/RunUntil() resets it. Lets
  // in-handler fast paths (batched stepping) honor a stop request the same
  // way the dispatch loop would.
  bool stop_requested() const { return stopped_; }

  // Returned by NextEventTime() when no live event is pending, and by
  // horizon() while running without a deadline.
  static constexpr SimTime kNoPendingEvent = INT64_MAX;

  // Timestamp of the earliest pending live event, or kNoPendingEvent.
  // Reclaims leading tombstones as a side effect (exactly what the next
  // dispatch would do), so peeking never changes observable behavior.
  SimTime NextEventTime();

  // Deadline of the innermost RunUntil() currently executing, or
  // kNoPendingEvent under Run(). Event handlers use it to avoid doing
  // inline work the dispatch loop would never have reached.
  SimTime horizon() const { return horizon_; }

  // Advances Now() to `when` without dispatching anything. `when` must not
  // precede Now() or overtake a pending live event — time only moves forward
  // and never skips scheduled work. This is the batched-stepping fast path:
  // a handler that knows nothing fires before `when` claims the interval
  // inline instead of paying one heap round-trip per step.
  void AdvanceTo(SimTime when);

  // Number of events dispatched so far.
  std::uint64_t events_dispatched() const { return dispatched_; }

  // Number of events still pending (including cancelled-but-unpopped ones).
  std::size_t pending_events() const { return queued_; }

  // Number of cancelled events whose queue entry has not been reclaimed yet.
  std::size_t cancelled_pending() const { return queued_ - live_; }

  // Total slab nodes ever allocated. Stays bounded by the peak number of
  // simultaneously pending events regardless of how many events are
  // scheduled, dispatched or cancelled over the simulator's lifetime.
  std::size_t slab_slots() const { return node_count_; }

 private:
  static constexpr std::uint32_t kNullIndex = 0xffffffffu;
  // The slab grows in fixed chunks so expansion never moves existing nodes
  // (a flat vector would re-move every pending closure on reallocation).
  static constexpr std::uint32_t kChunkShift = 10;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  struct EventNode {
    std::function<void()> fn;
    std::uint32_t gen = 1;
    std::uint32_t next = kNullIndex;  // FIFO chain in its bucket / free list
    bool active = false;              // scheduled and not yet popped
    bool cancelled = false;           // tombstone: skip + reclaim when popped
  };

  // FIFO chain of all pending events at one timestamp.
  struct Bucket {
    SimTime time = 0;
    std::uint32_t head = kNullIndex;
    std::uint32_t tail = kNullIndex;
    std::uint32_t next_free = kNullIndex;
  };

  // One heap entry per distinct pending timestamp; small and closure-free so
  // sift moves stay cheap.
  struct HeapEntry {
    SimTime time;
    std::uint32_t bucket;
  };

  // Open-addressing timestamp -> bucket slot (linear probing).
  struct MapSlot {
    SimTime time = 0;
    std::uint32_t bucket = kNullIndex;  // kNullIndex marks an empty slot
  };

  static EventId MakeId(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | (slot + 1);
  }
  static std::uint32_t SlotOf(EventId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  }
  static std::uint32_t GenOf(EventId id) { return static_cast<std::uint32_t>(id >> 32); }

  EventNode& NodeAt(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  std::uint32_t AllocateNode();
  void FreeNode(std::uint32_t slot);
  std::uint32_t AllocateBucket(SimTime time);
  void FreeBucket(std::uint32_t index);

  void HeapPush(HeapEntry entry);
  void HeapPopRoot();

  std::uint32_t MapFindOrInsert(SimTime time);  // allocates bucket + heap entry on miss
  void MapErase(SimTime time);
  void MapGrow();

  // Reclaims cancelled events at the front of the earliest bucket and drops
  // drained buckets; returns the bucket holding the next live event, or
  // kNullIndex when the queue is empty. The single place both DispatchNext
  // and RunUntil skip tombstones, so the two paths cannot drift.
  std::uint32_t LiveHeadBucket();

  bool DispatchNext();

  SimTime now_ = 0;
  SimTime horizon_ = kNoPendingEvent;
  std::uint64_t dispatched_ = 0;
  std::size_t queued_ = 0;  // pending events, including cancelled ones
  std::size_t live_ = 0;    // pending events that are not cancelled
  bool stopped_ = false;

  std::vector<std::unique_ptr<EventNode[]>> chunks_;
  std::size_t node_count_ = 0;
  std::uint32_t free_node_ = kNullIndex;
  std::vector<Bucket> buckets_;
  std::uint32_t free_bucket_ = kNullIndex;
  std::vector<HeapEntry> heap_;
  std::vector<MapSlot> map_;  // power-of-two size; empty until first use
  std::size_t map_used_ = 0;
};

}  // namespace byterobust

#endif  // SRC_SIM_SIMULATOR_H_

// Canned production-style campaign configurations used by benches and
// examples: the three-month dense job and the one-month MoE job of Sec. 8.1,
// both on 9,600 GPUs (1,200 machines), plus a 1,000-GPU Fig. 2 style job.

#ifndef SRC_CORE_PRODUCTION_PRESETS_H_
#define SRC_CORE_PRODUCTION_PRESETS_H_

#include "src/core/scenario.h"

namespace byterobust {

// The dense 70+B pretraining campaign (paper: three months). `days` scales
// the duration; fault rates and update cadence stay production-like.
ScenarioConfig DenseCampaignConfig(double days, std::uint64_t seed);

// The MoE 200+B pretraining campaign (paper: one month). MoE training carries
// more custom optimizations: more updates, higher bug probability, larger
// final MFU gain (Fig. 11: 1.58x).
ScenarioConfig MoeCampaignConfig(double days, std::uint64_t seed);

// A 1,000-GPU job over ~10 days with frequent manual adjustments (Fig. 2).
ScenarioConfig Fig2CampaignConfig(std::uint64_t seed);

}  // namespace byterobust

#endif  // SRC_CORE_PRODUCTION_PRESETS_H_

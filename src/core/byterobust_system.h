// ByteRobust facade: wires the full control plane + data plane onto a
// simulated cluster and training job. This is the library's primary public
// entry point (see examples/quickstart.cc).

#ifndef SRC_CORE_BYTEROBUST_SYSTEM_H_
#define SRC_CORE_BYTEROBUST_SYSTEM_H_

#include <cstdint>
#include <memory>

#include "src/ckpt/ckpt_manager.h"
#include "src/cluster/cluster.h"
#include "src/controller/robust_controller.h"
#include "src/diagnoser/diagnoser.h"
#include "src/metrics/ettr.h"
#include "src/monitor/monitor.h"
#include "src/recovery/hot_update.h"
#include "src/recovery/warm_standby.h"
#include "src/sim/simulator.h"
#include "src/training/train_job.h"

namespace byterobust {

struct SystemConfig {
  JobConfig job;
  MonitorConfig monitor;
  DiagnoserConfig diagnoser;
  StandbyConfig standby;
  HotUpdateConfig hot_update;
  CkptManagerConfig ckpt;
  ControllerConfig controller;
  std::uint64_t seed = 42;
  // Extra idle machines available beyond the job's demand (standby pool
  // candidates and reschedule headroom).
  int spare_machines = 8;
  // Trailing window for ETTR-span / MFU-sample compaction (0 = unbounded).
  // Campaigns set this so per-run metric memory stays O(window) instead of
  // O(steps); keep 0 when historical sliding-ETTR curves or the full MFU
  // series are needed (benches, figure exports).
  SimDuration metrics_retention = 0;
};

// A MonitorConfig tuned for multi-month campaign simulations: coarser
// inspection intervals keep the event count tractable while leaving detection
// latencies negligible at campaign scale. The Table 3 bench uses the default
// (production) intervals instead.
MonitorConfig CampaignMonitorConfig();

class ByteRobustSystem {
 public:
  explicit ByteRobustSystem(const SystemConfig& config);

  ByteRobustSystem(const ByteRobustSystem&) = delete;
  ByteRobustSystem& operator=(const ByteRobustSystem&) = delete;

  // Starts the controller (which starts the monitor and pre-provisions the
  // warm standby pool) and launches the training job.
  void Start();

  Simulator& sim() { return sim_; }
  Cluster& cluster() { return *cluster_; }
  TrainJob& job() { return *job_; }
  Monitor& monitor() { return *monitor_; }
  Diagnoser& diagnoser() { return *diagnoser_; }
  WarmStandbyPool& standby_pool() { return *standby_pool_; }
  HotUpdateManager& hot_updates() { return *hot_updates_; }
  CheckpointManager& ckpt() { return *ckpt_; }
  RobustController& controller() { return *controller_; }
  EttrTracker& ettr() { return *ettr_; }
  MfuSeries& mfu_series() { return mfu_series_; }

  const SystemConfig& config() const { return config_; }

 private:
  SystemConfig config_;
  Simulator sim_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<TrainJob> job_;
  std::unique_ptr<Monitor> monitor_;
  std::unique_ptr<Diagnoser> diagnoser_;
  std::unique_ptr<WarmStandbyPool> standby_pool_;
  std::unique_ptr<HotUpdateManager> hot_updates_;
  std::unique_ptr<CheckpointManager> ckpt_;
  std::unique_ptr<RobustController> controller_;
  std::unique_ptr<EttrTracker> ettr_;
  MfuSeries mfu_series_;
};

}  // namespace byterobust

#endif  // SRC_CORE_BYTEROBUST_SYSTEM_H_

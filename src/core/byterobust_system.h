// ByteRobust facade: wires the full control plane + data plane onto a
// simulated cluster and training job. This is the library's primary public
// entry point (see examples/quickstart.cc).
//
// Two wiring modes:
//   - self-contained (the classic single-job layout): the system owns its
//     Simulator, a root Cluster sized to the job plus exclusive spares, and a
//     per-job WarmStandbyPool;
//   - fleet member (src/fleet): the system runs on an externally owned
//     Simulator, carves its Cluster as a view of the shared fleet pool, and
//     draws spares from an external SparePool (the shared SpareArbiter's
//     per-job client) instead of an exclusive warm pool.

#ifndef SRC_CORE_BYTEROBUST_SYSTEM_H_
#define SRC_CORE_BYTEROBUST_SYSTEM_H_

#include <cstdint>
#include <memory>

#include "src/ckpt/ckpt_manager.h"
#include "src/cluster/cluster.h"
#include "src/controller/robust_controller.h"
#include "src/diagnoser/diagnoser.h"
#include "src/metrics/ettr.h"
#include "src/monitor/monitor.h"
#include "src/recovery/hot_update.h"
#include "src/recovery/warm_standby.h"
#include "src/sim/simulator.h"
#include "src/topology/fault_domains.h"
#include "src/training/train_job.h"

namespace byterobust {

struct SystemConfig {
  JobConfig job;
  MonitorConfig monitor;
  DiagnoserConfig diagnoser;
  StandbyConfig standby;
  HotUpdateConfig hot_update;
  CkptManagerConfig ckpt;
  ControllerConfig controller;
  std::uint64_t seed = 42;
  // Extra idle machines available beyond the job's demand (standby pool
  // candidates and reschedule headroom). Ignored in fleet wiring, where the
  // shared pool is sized by FleetConfig.
  int spare_machines = 8;
  // Hierarchical fault-domain graph attached to the owned root cluster
  // (self-contained wiring only; fleet members inherit the shared pool's
  // graph from FleetConfig). Attaching is inert until a domain fault stream
  // or injector actually impairs a domain.
  FaultDomainConfig fault_domains;
  // Trailing window for ETTR-span / MFU-sample compaction (0 = unbounded).
  // Campaigns set this so per-run metric memory stays O(window) instead of
  // O(steps); keep 0 when historical sliding-ETTR curves or the full MFU
  // series are needed (benches, figure exports).
  SimDuration metrics_retention = 0;
};

// A MonitorConfig tuned for multi-month campaign simulations: coarser
// inspection intervals keep the event count tractable while leaving detection
// latencies negligible at campaign scale. The Table 3 bench uses the default
// (production) intervals instead.
MonitorConfig CampaignMonitorConfig();

// External plumbing for a fleet-member system (see src/fleet/fleet.h). The
// pointed-to objects must outlive the system.
struct FleetMemberWiring {
  Simulator* sim = nullptr;
  Cluster* pool = nullptr;       // shared fleet pool; the job view is carved from it
  SparePool* spares = nullptr;   // shared-arbiter client for this job
  SimTime ettr_origin = 0;       // campaign start for this job's ETTR clock
};

class ByteRobustSystem {
 public:
  explicit ByteRobustSystem(const SystemConfig& config);

  // Fleet-member wiring: shared simulator + machine pool + spare supplier.
  ByteRobustSystem(const SystemConfig& config, const FleetMemberWiring& wiring);

  ByteRobustSystem(const ByteRobustSystem&) = delete;
  ByteRobustSystem& operator=(const ByteRobustSystem&) = delete;

  // Starts the controller (which starts the monitor and pre-provisions the
  // warm standby pool) and launches the training job.
  void Start();

  Simulator& sim() { return *sim_; }
  Cluster& cluster() { return *cluster_; }
  TrainJob& job() { return *job_; }
  Monitor& monitor() { return *monitor_; }
  Diagnoser& diagnoser() { return *diagnoser_; }
  // Only valid in self-contained wiring (fleet members draw from the shared
  // arbiter instead).
  WarmStandbyPool& standby_pool() { return *standby_pool_; }
  SparePool& spares() { return *spares_; }
  HotUpdateManager& hot_updates() { return *hot_updates_; }
  CheckpointManager& ckpt() { return *ckpt_; }
  RobustController& controller() { return *controller_; }
  EttrTracker& ettr() { return *ettr_; }
  MfuSeries& mfu_series() { return mfu_series_; }

  const SystemConfig& config() const { return config_; }

 private:
  void WireComponents(SimTime ettr_origin);

  SystemConfig config_;
  std::unique_ptr<Simulator> owned_sim_;
  Simulator* sim_ = nullptr;
  std::unique_ptr<Cluster> cluster_;
  SparePool* spares_ = nullptr;
  std::unique_ptr<TrainJob> job_;
  std::unique_ptr<Monitor> monitor_;
  std::unique_ptr<Diagnoser> diagnoser_;
  std::unique_ptr<WarmStandbyPool> standby_pool_;
  std::unique_ptr<HotUpdateManager> hot_updates_;
  std::unique_ptr<CheckpointManager> ckpt_;
  std::unique_ptr<RobustController> controller_;
  std::unique_ptr<EttrTracker> ettr_;
  MfuSeries mfu_series_;
};

}  // namespace byterobust

#endif  // SRC_CORE_BYTEROBUST_SYSTEM_H_

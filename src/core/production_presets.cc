#include "src/core/production_presets.h"

namespace byterobust {

namespace {

// Coarse inspection cadence for multi-month 1,200-machine campaigns: keeps
// the event count tractable; detection latency error (<= 5 min) is noise at
// campaign scale.
MonitorConfig BigCampaignMonitor() {
  MonitorConfig cfg = CampaignMonitorConfig();
  cfg.intervals.network = Minutes(5);
  cfg.intervals.gpu = Minutes(5);
  cfg.intervals.host = Minutes(5);
  cfg.watchdog_interval = Minutes(2);
  return cfg;
}

}  // namespace

ScenarioConfig DenseCampaignConfig(double days, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.system.job = ProductionDenseJob();
  cfg.system.seed = seed;
  cfg.system.spare_machines = 40;
  cfg.system.monitor = BigCampaignMonitor();
  cfg.duration = Days(days);
  cfg.injector.reference_mtbf = Hours(2.78);
  cfg.injector.reference_machines = 2048;
  // Dense training is community-optimized: fewer updates, modest MFU gain
  // (Fig. 11: 1.25x), lower bug rate.
  cfg.planned_updates = static_cast<int>(days / 3.0) + 4;
  cfg.final_efficiency = 1.25;
  cfg.update_buggy_prob = 0.10;
  cfg.update_urgent_prob = 0.25;
  return cfg;
}

ScenarioConfig MoeCampaignConfig(double days, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.system.job = ProductionMoeJob();
  cfg.system.seed = seed;
  cfg.system.spare_machines = 40;
  cfg.system.monitor = BigCampaignMonitor();
  cfg.duration = Days(days);
  cfg.injector.reference_mtbf = Hours(2.78);
  cfg.injector.reference_machines = 2048;
  // MoE integrates many custom optimizations (Sec. 8.1.3): more updates,
  // bigger MFU gain (1.58x), more rollbacks and manual restarts.
  cfg.planned_updates = static_cast<int>(days) + 6;
  cfg.final_efficiency = 1.58;
  cfg.update_buggy_prob = 0.18;
  cfg.update_urgent_prob = 0.35;
  return cfg;
}

ScenarioConfig Fig2CampaignConfig(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.system.job.name = "fig2-1000gpu";
  cfg.system.job.arch = ModelArch::kDense;
  cfg.system.job.model_params_b = 30.0;
  cfg.system.job.parallelism.tp = 4;
  cfg.system.job.parallelism.pp = 5;
  cfg.system.job.parallelism.dp = 50;  // 1,000 GPUs
  cfg.system.job.parallelism.gpus_per_machine = 8;
  cfg.system.job.base_step_time = Seconds(12);
  cfg.system.seed = seed;
  cfg.system.spare_machines = 16;
  cfg.system.monitor = CampaignMonitorConfig();
  cfg.duration = Days(10);
  cfg.injector.reference_mtbf = Hours(2.78);
  cfg.injector.reference_machines = 2048;
  // Fig. 2 shows 28 runs in 10 days: heavy manual adjustment cadence.
  cfg.planned_updates = 18;
  cfg.final_efficiency = 1.9;  // relative MFU reaches ~2x in Fig. 2
  cfg.update_buggy_prob = 0.15;
  cfg.update_urgent_prob = 0.5;
  return cfg;
}

}  // namespace byterobust

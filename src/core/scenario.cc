#include "src/core/scenario.h"

#include <algorithm>
#include <cmath>

#include "src/common/log.h"

namespace byterobust {

Scenario::Scenario(const ScenarioConfig& config)
    : config_(config),
      system_(std::make_unique<ByteRobustSystem>(config.system)),
      sys_(system_.get()),
      rng_(config.system.seed ^ 0xC0FFEEULL),
      domain_rng_(config.system.seed ^ 0xD0AA11ULL) {
  injector_ = std::make_unique<FaultInjector>(config.injector, rng_.Fork());
  sys_->controller().SetRestartListener(
      [this](ResolutionMechanism mechanism) { OnRestart(mechanism); });
}

Scenario::Scenario(const ScenarioConfig& config, ByteRobustSystem* system)
    : config_(config),
      sys_(system),
      rng_(system->config().seed ^ 0xC0FFEEULL),
      domain_rng_(system->config().seed ^ 0xD0AA11ULL) {
  injector_ = std::make_unique<FaultInjector>(config.injector, rng_.Fork());
  sys_->controller().SetRestartListener(
      [this](ResolutionMechanism mechanism) { OnRestart(mechanism); });
}

void Scenario::Begin() {
  sys_->Start();
  ScheduleNextFailure();
  if (config_.planned_updates > 0) {
    ScheduleNextUpdate(0);
  }
  if (config_.domain_faults.mean_gap > 0 && sys_->cluster().fault_domains() != nullptr) {
    ScheduleNextDomainFault();
  }
}

void Scenario::Run() {
  Begin();
  sys_->sim().RunUntil(config_.duration);
}

void Scenario::ScheduleNextFailure() {
  const SimDuration delay =
      injector_->NextFailureDelay(sys_->cluster().num_training_slots());
  sys_->sim().Schedule(delay, [this] { InjectFailure(); });
}

void Scenario::ScheduleNextUpdate(int update_index) {
  if (update_index >= config_.planned_updates) {
    return;
  }
  // Spread updates across the campaign with jitter.
  const double mean_gap =
      static_cast<double>(config_.duration) / (config_.planned_updates + 1);
  const SimDuration delay = static_cast<SimDuration>(rng_.Exponential(mean_gap));
  sys_->sim().Schedule(delay, [this, update_index] {
    CodeVersion v;
    v.id = next_version_id_++;
    // Efficiency approaches final_efficiency geometrically: early updates buy
    // the big MFU leaps, later ones refine (Fig. 11's staircase).
    const double progress =
        static_cast<double>(update_index + 1) / static_cast<double>(config_.planned_updates);
    const double target = 1.0 + (config_.final_efficiency - 1.0) *
                                    (1.0 - std::pow(1.0 - progress, 2.0));
    v.efficiency = std::max(sys_->job().current_version().efficiency, target);
    v.buggy = rng_.Bernoulli(config_.update_buggy_prob);
    v.bug_latency = config_.bug_latency;
    v.urgent = rng_.Bernoulli(config_.update_urgent_prob);
    v.description = "engineering update #" + std::to_string(v.id);
    ++stats_.updates_submitted;
    if (v.buggy) {
      ++stats_.buggy_updates;
    }
    submitted_versions_[v.id] = {v, 0};
    sys_->hot_updates().Submit(v);
    ScheduleNextUpdate(update_index + 1);
  });
}

void Scenario::InjectFailure() {
  if (sys_->job().state() != JobRunState::kRunning) {
    // Hold fault arrivals while the job is down; machines fail under load.
    sys_->sim().Schedule(Minutes(2), [this] { InjectFailure(); });
    return;
  }
  // serving_slots() is the same slot-ordered membership as ServingMachines()
  // without materialising a copy per incident.
  const Incident incident =
      injector_->SampleFailure(sys_->sim().Now(), sys_->cluster().serving_slots());
  ++stats_.incidents_injected;
  ++stats_.injected_by_symptom[static_cast<int>(incident.symptom)];
  BR_LOG_INFO("scenario", "injecting %s", incident.ToString().c_str());

  FaultInjector::ApplyToCluster(incident, &sys_->cluster());
  sys_->controller().NotifyIncidentInjected(incident);
  TrackIncident(incident);
  ApplyEffect(incident);
  ScheduleNextFailure();
}

void Scenario::ScheduleNextDomainFault() {
  const SimDuration delay = static_cast<SimDuration>(
      domain_rng_.Exponential(static_cast<double>(config_.domain_faults.mean_gap)));
  sys_->sim().Schedule(delay, [this] { InjectDomainFault(); });
}

void Scenario::InjectDomainFault() {
  FaultDomains* domains = sys_->cluster().fault_domains();
  const DomainFaultStreamConfig& cfg = config_.domain_faults;
  const DomainLevel level = DomainFaultLevel(cfg.kind);
  const int count = domains->CountAtLevel(level);
  const DomainId id =
      domains->DomainIdAt(level, static_cast<int>(domain_rng_.UniformInt(0, count - 1)));
  if (domains->domain(id).state != DomainState::kUp) {
    ScheduleNextDomainFault();  // still faulted from a previous draw; skip
    return;
  }
  const bool transient = domain_rng_.Bernoulli(cfg.transient_fraction);
  const SimTime now = sys_->sim().Now();
  const DomainFaultEffect effect = DomainInjector::ApplyToDomain(
      cfg.kind, id, cfg.degradation_factor, &sys_->cluster(), now);
  // Ground truth for the per-job incident: only the machines actually serving
  // this job's slots (idle spares under the domain degrade silently).
  const std::vector<MachineId> serving = DomainInjector::ServingUnder(sys_->cluster(), id);
  ++stats_.domain_faults_injected;
  const int blast_event =
      domain_blast_.RecordInjection(level, cfg.kind, static_cast<int>(effect.affected.size()),
                                    serving.empty() ? 0 : 1, transient, now);
  BR_LOG_INFO("scenario", "domain fault %s on %s #%d: %d machine(s), %d serving%s",
              DomainFaultKindName(cfg.kind), DomainLevelName(level),
              domains->domain(id).index, static_cast<int>(effect.affected.size()),
              static_cast<int>(serving.size()), transient ? " (transient)" : "");

  std::uint64_t incident_id = 0;
  if (cfg.kind != DomainFaultKind::kLinkFailSlow && !serving.empty()) {
    Incident inc;
    // Domain incident ids live above every other generator's range (injector
    // small ids, buggy updates 1000000+, fleet storms 5000000+).
    inc.id = 7000000 + next_domain_fault_id_;
    inc.symptom = DomainFaultSymptom(cfg.kind);
    inc.root_cause = transient ? RootCause::kTransient : RootCause::kInfrastructure;
    inc.faulty_machines = serving;
    inc.inject_time = now;
    incident_id = inc.id;
    ++stats_.incidents_injected;
    ++stats_.injected_by_symptom[static_cast<int>(inc.symptom)];
    for (MachineId m : serving) {
      ++sys_->cluster().machine(m).incident_count;
    }
    sys_->controller().NotifyIncidentInjected(inc);
    // Track for refail-on-restart like injector incidents, but *without*
    // TrackIncident's transient_heal timer: domain faults heal on their own
    // hold through HealDomainFault, which also restores the domain node.
    ActiveIncident active;
    active.incident = inc;
    active_.push_back(active);
    if (cfg.kind == DomainFaultKind::kPowerLoss &&
        sys_->job().state() == JobRunState::kRunning) {
      // Powered-off machines take their training processes down with them.
      sys_->job().Crash();
    }
    // Spine flaps stay gray: the network inspection sees the packet loss and
    // the controller's debounce decides eviction vs reattempt.
  }

  const double ettr_at_inject = sys_->ettr().CumulativeEttr(now);
  const SimDuration hold = transient ? cfg.transient_hold : cfg.persistent_hold;
  sys_->sim().Schedule(hold, [this, id, incident_id, blast_event, transient, ettr_at_inject] {
    HealDomainFault(id, incident_id, transient);
    domain_blast_.RecordHeal(blast_event,
                             sys_->ettr().CumulativeEttr(sys_->sim().Now()) - ettr_at_inject);
  });
  ++next_domain_fault_id_;
  ScheduleNextDomainFault();
}

void Scenario::HealDomainFault(DomainId domain, std::uint64_t incident_id, bool transient) {
  if (transient && incident_id != 0) {
    for (ActiveIncident& a : active_) {
      if (a.incident.id == incident_id) {
        a.healed = true;  // the flap self-recovered; IsResolved now passes
      }
    }
  }
  DomainInjector::HealDomain(config_.domain_faults.kind, domain, &sys_->cluster(),
                             sys_->sim().Now());
}

void Scenario::TrackIncident(const Incident& incident) {
  ActiveIncident active;
  active.incident = incident;
  active_.push_back(active);
  if (incident.root_cause == RootCause::kTransient) {
    const std::uint64_t id = incident.id;
    sys_->sim().Schedule(config_.transient_heal, [this, id] {
      for (ActiveIncident& a : active_) {
        if (a.incident.id == id) {
          a.healed = true;
          FaultInjector::ClearFromCluster(a.incident, &sys_->cluster());
        }
      }
    });
  }
}

void Scenario::InjectExternal(const Incident& incident) {
  ++stats_.incidents_injected;
  ++stats_.injected_by_symptom[static_cast<int>(incident.symptom)];
  BR_LOG_INFO("scenario", "external incident %s", incident.ToString().c_str());
  sys_->controller().NotifyIncidentInjected(incident);
  TrackIncident(incident);
  // A job that is already down keeps the ground truth (re-detection after the
  // restart flows through the normal inspection paths) but takes no fresh
  // process-level effect.
  if (sys_->job().state() == JobRunState::kRunning) {
    ApplyEffect(incident);
  }
}

Rank Scenario::CulpritRankFor(const Incident& incident) const {
  const Topology& topo = sys_->job().topology();
  if (!incident.faulty_machines.empty()) {
    const int slot = sys_->cluster().SlotOfMachine(incident.faulty_machines.front());
    if (slot >= 0) {
      const int gpu = std::max(incident.gpu_index, 0) % topo.config().gpus_per_machine;
      return slot * topo.config().gpus_per_machine + gpu;
    }
  }
  // User-code hang: deterministic pseudo-random rank derived from the id.
  return static_cast<Rank>(incident.id % static_cast<std::uint64_t>(topo.world_size()));
}

void Scenario::ApplyEffect(const Incident& incident) {
  TrainJob& job = sys_->job();
  switch (incident.symptom) {
    case IncidentSymptom::kJobHang:
      job.Hang(CulpritRankFor(incident));
      break;
    case IncidentSymptom::kMfuDecline:
      // No direct job action: the perf model picks the throttled clock up on
      // the next step, and the monitor sees the MFU slide.
      break;
    case IncidentSymptom::kNanValue:
      job.SetNanLoss(true);
      break;
    case IncidentSymptom::kCodeDataAdjustment:
      break;  // manual restarts flow through the hot-update manager
    default:
      job.Crash();  // explicit fail-stop failure
      break;
  }
}

bool Scenario::IsResolved(const ActiveIncident& active) const {
  const Incident& inc = active.incident;
  if (inc.root_cause == RootCause::kTransient) {
    return active.healed;
  }
  if (inc.root_cause == RootCause::kUserCode) {
    if (active.buggy_version_id >= 0) {
      return !sys_->job().HasVersion(active.buggy_version_id);
    }
    return false;  // resolved explicitly on rollback/human restarts
  }
  // Infrastructure / SDC: resolved once every faulty machine is out.
  for (MachineId m : inc.faulty_machines) {
    if (!sys_->cluster().IsBlacklisted(m)) {
      return false;
    }
  }
  return true;
}

void Scenario::OnRestart(ResolutionMechanism mechanism) {
  // A rollback (or a human intervention) fixes latent user-code faults.
  const bool code_fixed = mechanism == ResolutionMechanism::kRollback ||
                          mechanism == ResolutionMechanism::kUnresolvedHuman;

  // Detonate latent bugs in freshly applied updates.
  const CodeVersion& current = sys_->job().current_version();
  if (current.buggy) {
    bool already_tracked = false;
    for (const ActiveIncident& a : active_) {
      if (a.buggy_version_id == current.id) {
        already_tracked = true;
      }
    }
    if (!already_tracked) {
      Incident inc;
      inc.id = 1000000 + static_cast<std::uint64_t>(current.id);
      inc.symptom = IncidentSymptom::kCudaError;  // e.g. illegal memory access
      inc.root_cause = RootCause::kUserCode;
      inc.inject_time = sys_->sim().Now();
      ActiveIncident active;
      active.incident = inc;
      active.buggy_version_id = current.id;
      active_.push_back(active);
      ++stats_.incidents_injected;
      ++stats_.injected_by_symptom[static_cast<int>(inc.symptom)];
    }
  }

  // Drop resolved incidents; re-manifest the survivors.
  std::vector<ActiveIncident> survivors;
  const std::uint64_t generation = ++refail_generation_;
  for (ActiveIncident& a : active_) {
    if (a.incident.root_cause == RootCause::kUserCode && a.buggy_version_id < 0 && code_fixed) {
      continue;  // the rollback reverted whatever was broken
    }
    if (IsResolved(a)) {
      continue;
    }
    survivors.push_back(a);
  }
  active_ = std::move(survivors);

  for (const ActiveIncident& a : active_) {
    const Incident inc = a.incident;
    const SimDuration delay = inc.root_cause == RootCause::kUserCode &&
                                      a.buggy_version_id >= 0
                                  ? config_.bug_latency
                                  : config_.refail_delay;
    sys_->sim().Schedule(delay, [this, inc, generation] {
      if (generation != refail_generation_) {
        return;  // superseded by a newer restart
      }
      if (sys_->job().state() != JobRunState::kRunning) {
        return;
      }
      bool still_active = false;
      for (const ActiveIncident& a2 : active_) {
        if (a2.incident.id == inc.id && !IsResolved(a2)) {
          still_active = true;
        }
      }
      if (!still_active) {
        return;
      }
      ++stats_.refails;
      BR_LOG_INFO("scenario", "unresolved %s re-manifests", inc.ToString().c_str());
      // If the controller already closed its episode (it believed the issue
      // fixed), re-register the ground truth so the new episode attributes
      // the recurring anomaly to the right incident.
      if (sys_->controller().episodes_open() == 0) {
        sys_->controller().NotifyIncidentInjected(inc);
      }
      ApplyEffect(inc);
    });
  }

  // Re-land engineering updates a rollback stripped (after team review; a
  // buggy update returns fixed). Capped so a pathological loop cannot form.
  for (auto& [original_id, entry] : submitted_versions_) {
    auto& [version, attempts] = entry;
    if (attempts >= 3 || sys_->job().HasVersion(version.id)) {
      continue;
    }
    bool bug_still_live = false;
    for (const ActiveIncident& a : active_) {
      if (a.buggy_version_id == original_id) {
        bug_still_live = true;  // its bug is the active incident; wait
      }
    }
    if (bug_still_live) {
      continue;
    }
    ++attempts;
    CodeVersion fixed = version;
    fixed.id = next_version_id_++;  // a fresh id: the old (buggy) one stays dead
    fixed.buggy = false;
    fixed.urgent = false;
    fixed.description += " (re-landed after review)";
    version = fixed;  // future HasVersion checks track the re-landed id
    const CodeVersion to_submit = fixed;
    sys_->sim().Schedule(Hours(4), [this, to_submit] {
      if (!sys_->job().HasVersion(to_submit.id)) {
        sys_->hot_updates().Submit(to_submit);
      }
    });
  }
}

}  // namespace byterobust

#include "src/core/byterobust_system.h"

namespace byterobust {

MonitorConfig CampaignMonitorConfig() {
  MonitorConfig cfg;
  cfg.intervals.network = Seconds(60);
  cfg.intervals.gpu = Seconds(60);
  cfg.intervals.host = Seconds(60);
  cfg.watchdog_interval = Seconds(60);
  return cfg;
}

ByteRobustSystem::ByteRobustSystem(const SystemConfig& config) : config_(config) {
  owned_sim_ = std::make_unique<Simulator>();
  sim_ = owned_sim_.get();
  cluster_ = std::make_unique<Cluster>(config.job.parallelism.num_machines(),
                                       config.job.parallelism.gpus_per_machine,
                                       config.spare_machines);
  if (config.fault_domains.enabled && FaultDomainsEnvEnabled()) {
    cluster_->AttachFaultDomains(config.fault_domains);
  }
  standby_pool_ = std::make_unique<WarmStandbyPool>(config.standby, sim_, cluster_.get());
  spares_ = standby_pool_.get();
  WireComponents(/*ettr_origin=*/0);
}

ByteRobustSystem::ByteRobustSystem(const SystemConfig& config, const FleetMemberWiring& wiring)
    : config_(config) {
  sim_ = wiring.sim;
  cluster_ = std::make_unique<Cluster>(*wiring.pool, config.job.parallelism.num_machines());
  spares_ = wiring.spares;
  WireComponents(wiring.ettr_origin);
}

void ByteRobustSystem::WireComponents(SimTime ettr_origin) {
  Rng root(config_.seed);
  job_ = std::make_unique<TrainJob>(config_.job, sim_, cluster_.get(), root.Fork().engine()());
  monitor_ = std::make_unique<Monitor>(config_.monitor, sim_, cluster_.get(), job_.get());
  diagnoser_ = std::make_unique<Diagnoser>(config_.diagnoser, root.Fork());
  hot_updates_ = std::make_unique<HotUpdateManager>(config_.hot_update, sim_);
  ckpt_ = std::make_unique<CheckpointManager>(config_.ckpt, sim_, job_.get());
  controller_ = std::make_unique<RobustController>(
      config_.controller, sim_, cluster_.get(), job_.get(), monitor_.get(), diagnoser_.get(),
      spares_, hot_updates_.get(), ckpt_.get(), root.Fork());
  ettr_ = std::make_unique<EttrTracker>(ettr_origin, config_.metrics_retention);
  mfu_series_.SetRetention(config_.metrics_retention);
  job_->AddStepObserver([this](const StepRecord& rec) {
    ettr_->OnStep(rec);
    mfu_series_.OnStep(rec);
  });
}

void ByteRobustSystem::Start() {
  controller_->Start();
  job_->Start();
}

}  // namespace byterobust

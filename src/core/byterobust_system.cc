#include "src/core/byterobust_system.h"

namespace byterobust {

MonitorConfig CampaignMonitorConfig() {
  MonitorConfig cfg;
  cfg.intervals.network = Seconds(60);
  cfg.intervals.gpu = Seconds(60);
  cfg.intervals.host = Seconds(60);
  cfg.watchdog_interval = Seconds(60);
  return cfg;
}

ByteRobustSystem::ByteRobustSystem(const SystemConfig& config) : config_(config) {
  Rng root(config.seed);
  cluster_ = std::make_unique<Cluster>(config.job.parallelism.num_machines(),
                                       config.job.parallelism.gpus_per_machine,
                                       config.spare_machines);
  job_ = std::make_unique<TrainJob>(config.job, &sim_, cluster_.get(), root.Fork().engine()());
  monitor_ = std::make_unique<Monitor>(config.monitor, &sim_, cluster_.get(), job_.get());
  diagnoser_ = std::make_unique<Diagnoser>(config.diagnoser, root.Fork());
  standby_pool_ = std::make_unique<WarmStandbyPool>(config.standby, &sim_, cluster_.get());
  hot_updates_ = std::make_unique<HotUpdateManager>(config.hot_update, &sim_);
  ckpt_ = std::make_unique<CheckpointManager>(config.ckpt, &sim_, job_.get());
  controller_ = std::make_unique<RobustController>(
      config.controller, &sim_, cluster_.get(), job_.get(), monitor_.get(), diagnoser_.get(),
      standby_pool_.get(), hot_updates_.get(), ckpt_.get(), root.Fork());
  ettr_ = std::make_unique<EttrTracker>(0, config.metrics_retention);
  mfu_series_.SetRetention(config.metrics_retention);
  job_->AddStepObserver([this](const StepRecord& rec) {
    ettr_->OnStep(rec);
    mfu_series_.OnStep(rec);
  });
}

void ByteRobustSystem::Start() {
  controller_->Start();
  job_->Start();
}

}  // namespace byterobust

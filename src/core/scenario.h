// Scenario runner: drives a production-style campaign against a
// ByteRobustSystem — injecting faults with the Table 1 mix, evolving the user
// code through hot updates (Fig. 2 / Fig. 11), and maintaining the ground
// truth needed to decide whether a controller action actually removed the
// root cause (if not, the failure recurs and the controller escalates).

#ifndef SRC_CORE_SCENARIO_H_
#define SRC_CORE_SCENARIO_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/core/byterobust_system.h"
#include "src/faults/domain_injector.h"
#include "src/faults/fault_injector.h"
#include "src/metrics/domain_blast.h"

namespace byterobust {

struct ScenarioConfig {
  SystemConfig system;
  FaultInjectorConfig injector;
  SimDuration duration = Days(30);

  // Code evolution: non-manual-failure interruptions submitted over the
  // campaign, raising efficiency toward `final_efficiency` (Fig. 11 shows
  // 1.25x for dense, 1.58x for MoE jobs).
  int planned_updates = 24;
  double final_efficiency = 1.25;
  double update_buggy_prob = 0.12;
  double update_urgent_prob = 0.25;
  SimDuration bug_latency = Minutes(8);

  // How long after a restart a still-unresolved root cause re-manifests.
  SimDuration refail_delay = Seconds(90);
  // Transient faults self-heal after this long.
  SimDuration transient_heal = Minutes(3);

  // Correlated domain-fault stream (spine flaps / power loss / link
  // fail-slow). Inactive unless mean_gap > 0 *and* the system's cluster has a
  // fault-domain graph attached; drawn from a dedicated RNG stream so
  // enabling it never perturbs the per-machine injector's draws.
  DomainFaultStreamConfig domain_faults;
};

struct ScenarioStats {
  int incidents_injected = 0;
  std::map<int, int> injected_by_symptom;  // IncidentSymptom -> count
  int updates_submitted = 0;
  int buggy_updates = 0;
  int refails = 0;
  int domain_faults_injected = 0;
};

class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& config);

  // Drives an externally owned system (fleet mode): the caller wires the
  // system onto a shared simulator/cluster and owns the event loop; the
  // scenario only injects this job's faults and code updates. `config.system`
  // is ignored (the external system was built from its own config).
  Scenario(const ScenarioConfig& config, ByteRobustSystem* system);

  // Runs the campaign to config.duration (self-contained mode).
  void Run();

  // Starts the system and schedules the fault/update arrival processes
  // without running the simulator. Fleet members call this at their job's
  // start time; Run() is Begin() + RunUntil(duration).
  void Begin();

  // Registers an externally generated incident (fleet-level switch storm):
  // controller ground-truth attribution, transient self-heal,
  // refail-on-restart bookkeeping and the job-side effect, exactly as for an
  // incident drawn by this scenario's own injector. The caller has already
  // applied the health mutation to the cluster machines.
  void InjectExternal(const Incident& incident);

  ByteRobustSystem& system() { return *sys_; }
  const ScenarioStats& stats() const { return stats_; }
  const ScenarioConfig& config() const { return config_; }
  // Blast-radius accounting for this scenario's domain-fault stream (empty
  // when the stream is disabled).
  const DomainBlastStats& domain_blast() const { return domain_blast_; }

 private:
  struct ActiveIncident {
    Incident incident;
    bool healed = false;         // transient root cause self-recovered
    int buggy_version_id = -1;   // user-code fault introduced by this update
  };

  void ScheduleNextFailure();
  void ScheduleNextUpdate(int update_index);
  void InjectFailure();
  void ScheduleNextDomainFault();
  void InjectDomainFault();
  void HealDomainFault(DomainId domain, std::uint64_t incident_id, bool transient);
  void TrackIncident(const Incident& incident);
  void ApplyEffect(const Incident& incident);
  void OnRestart(ResolutionMechanism mechanism);
  bool IsResolved(const ActiveIncident& active) const;
  Rank CulpritRankFor(const Incident& incident) const;

  ScenarioConfig config_;
  std::unique_ptr<ByteRobustSystem> system_;  // self-contained mode only
  ByteRobustSystem* sys_ = nullptr;           // the driven system (owned or external)
  std::unique_ptr<FaultInjector> injector_;
  Rng rng_;
  // Dedicated stream for domain-fault placement/holds: deriving it from a
  // separate seed constant keeps the legacy injector/update draws untouched
  // whether or not the stream is enabled.
  Rng domain_rng_;
  ScenarioStats stats_;
  DomainBlastStats domain_blast_;
  std::uint64_t next_domain_fault_id_ = 0;
  std::vector<ActiveIncident> active_;
  // Non-buggy engineering updates that a (possibly spurious) rollback popped;
  // the owning team re-lands them after review (capped attempts per version).
  std::map<int, std::pair<CodeVersion, int>> submitted_versions_;
  int next_version_id_ = 1;
  std::uint64_t refail_generation_ = 0;
};

}  // namespace byterobust

#endif  // SRC_CORE_SCENARIO_H_

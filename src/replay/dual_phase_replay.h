// Dual-phase, dimension-aware replay (paper Algorithm 1, Fig. 6).
//
// Group testing for unknown faults (typically SDC) that survive every other
// check: keep the original TP/PP sizes, reduce the model layers and the DP
// size, and replay the job twice — once on "horizontal" machine groups
// (partition by floor(id / m)) and once on "vertical" groups (partition by
// id mod n). The intersection of the failing groups pins the faulty machine.

#ifndef SRC_REPLAY_DUAL_PHASE_REPLAY_H_
#define SRC_REPLAY_DUAL_PHASE_REPLAY_H_

#include <functional>
#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/topology/parallelism.h"

namespace byterobust {

struct ReplayOutcome {
  bool found = false;
  int faulty_horizontal = -1;  // group index a
  int faulty_vertical = -1;    // group index b
  std::vector<MachineId> suspects;
  SimDuration elapsed = 0;
  int replays_run = 0;
};

class DualPhaseReplay {
 public:
  // `z` machines partitioned with group size `m` (recommended: a multiple of
  // the PP size so intra-group communication stays representative); n = z/m.
  // Requires m >= 1, z % m == 0 and z % n == 0.
  DualPhaseReplay(int z, int m);

  int z() const { return z_; }
  int m() const { return m_; }
  int n() const { return n_; }

  // Phase-1 groups: machine id -> floor(id / m), n groups of size m.
  int HorizontalGroupOf(MachineId machine) const;
  std::vector<MachineId> HorizontalGroup(int a) const;

  // Phase-2 groups: machine id -> id mod n, n groups of size z/n.
  int VerticalGroupOf(MachineId machine) const;
  std::vector<MachineId> VerticalGroup(int b) const;

  // Solves { floor(x/m) == a, x mod n == b } over [0, z). Alg. 1 line 9.
  std::vector<MachineId> Solve(int a, int b) const;

  // |S| per Alg. 1 line 10: 1 when m <= n, ceil(m/n) otherwise.
  int ExpectedSuspectCardinality() const;

  // Runs both phases. `replay_fails(group_members)` is the replay oracle: it
  // returns true when the reduced job on those machines reproduces the fault.
  // Per-group replays within one phase run concurrently (each group is an
  // independent machine set), so each phase costs one `per_replay` duration.
  ReplayOutcome Locate(const std::function<bool(const std::vector<MachineId>&)>& replay_fails,
                       SimDuration per_replay = Minutes(10)) const;

  // Convenience oracle for a set of faulty machines that reproduce with
  // probability `reproduce_prob` per replay (SDC is stochastic, Sec. 9).
  static std::function<bool(const std::vector<MachineId>&)> FaultOracle(
      std::set<MachineId> faulty, double reproduce_prob, Rng* rng);

 private:
  int z_;
  int m_;
  int n_;
};

}  // namespace byterobust

#endif  // SRC_REPLAY_DUAL_PHASE_REPLAY_H_

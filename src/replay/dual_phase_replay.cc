#include "src/replay/dual_phase_replay.h"

#include <stdexcept>

namespace byterobust {

DualPhaseReplay::DualPhaseReplay(int z, int m) : z_(z), m_(m), n_(m > 0 ? z / m : 0) {
  if (z <= 0 || m <= 0 || z % m != 0) {
    throw std::invalid_argument("DualPhaseReplay requires z > 0, m > 0, z % m == 0");
  }
  if (z_ % n_ != 0) {
    throw std::invalid_argument("DualPhaseReplay requires z % n == 0 (n = z/m)");
  }
}

int DualPhaseReplay::HorizontalGroupOf(MachineId machine) const { return machine / m_; }

std::vector<MachineId> DualPhaseReplay::HorizontalGroup(int a) const {
  if (a < 0 || a >= n_) {
    throw std::out_of_range("horizontal group index");
  }
  std::vector<MachineId> out;
  out.reserve(static_cast<std::size_t>(m_));
  for (int x = a * m_; x < (a + 1) * m_; ++x) {
    out.push_back(x);
  }
  return out;
}

int DualPhaseReplay::VerticalGroupOf(MachineId machine) const { return machine % n_; }

std::vector<MachineId> DualPhaseReplay::VerticalGroup(int b) const {
  if (b < 0 || b >= n_) {
    throw std::out_of_range("vertical group index");
  }
  std::vector<MachineId> out;
  out.reserve(static_cast<std::size_t>(z_ / n_));
  for (int x = b; x < z_; x += n_) {
    out.push_back(x);
  }
  return out;
}

std::vector<MachineId> DualPhaseReplay::Solve(int a, int b) const {
  std::vector<MachineId> out;
  for (int x = a * m_; x < (a + 1) * m_; ++x) {
    if (x % n_ == b) {
      out.push_back(x);
    }
  }
  return out;
}

int DualPhaseReplay::ExpectedSuspectCardinality() const {
  return m_ <= n_ ? 1 : (m_ + n_ - 1) / n_;
}

ReplayOutcome DualPhaseReplay::Locate(
    const std::function<bool(const std::vector<MachineId>&)>& replay_fails,
    SimDuration per_replay) const {
  ReplayOutcome outcome;

  // Phase 1: horizontal grouping. All n group-replays run concurrently.
  for (int a = 0; a < n_; ++a) {
    ++outcome.replays_run;
    if (replay_fails(HorizontalGroup(a))) {
      outcome.faulty_horizontal = a;
      break;
    }
  }
  outcome.elapsed += per_replay;
  if (outcome.faulty_horizontal < 0) {
    return outcome;  // fault did not reproduce in phase 1
  }

  // Phase 2: vertical grouping.
  for (int b = 0; b < n_; ++b) {
    ++outcome.replays_run;
    if (replay_fails(VerticalGroup(b))) {
      outcome.faulty_vertical = b;
      break;
    }
  }
  outcome.elapsed += per_replay;
  if (outcome.faulty_vertical < 0) {
    return outcome;
  }

  outcome.suspects = Solve(outcome.faulty_horizontal, outcome.faulty_vertical);
  outcome.found = !outcome.suspects.empty();
  return outcome;
}

std::function<bool(const std::vector<MachineId>&)> DualPhaseReplay::FaultOracle(
    std::set<MachineId> faulty, double reproduce_prob, Rng* rng) {
  return [faulty = std::move(faulty), reproduce_prob, rng](const std::vector<MachineId>& group) {
    for (MachineId m : group) {
      if (faulty.count(m) > 0 && rng->Bernoulli(reproduce_prob)) {
        return true;
      }
    }
    return false;
  };
}

}  // namespace byterobust

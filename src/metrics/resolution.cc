#include "src/metrics/resolution.h"

#include <algorithm>

namespace byterobust {

const char* MechanismName(ResolutionMechanism mechanism) {
  switch (mechanism) {
    case ResolutionMechanism::kAutoFtEvictRestart:
      return "AutoFT-ER";
    case ResolutionMechanism::kAutoFtHotUpdate:
      return "AutoFT-HU";
    case ResolutionMechanism::kAnalyzerEvictRestart:
      return "Analyzer-ER";
    case ResolutionMechanism::kRollback:
      return "Rollback";
    case ResolutionMechanism::kReattempt:
      return "Reattempt";
    case ResolutionMechanism::kDualPhaseReplay:
      return "Dual-Phase Replay";
    case ResolutionMechanism::kUnresolvedHuman:
      return "Human";
  }
  return "unknown";
}

void ResolutionLog::Add(IncidentResolution resolution) {
  entries_.push_back(std::move(resolution));
}

int ResolutionLog::CountBy(ResolutionMechanism mechanism) const {
  return static_cast<int>(std::count_if(
      entries_.begin(), entries_.end(),
      [mechanism](const IncidentResolution& r) { return r.mechanism == mechanism; }));
}

int ResolutionLog::CountBy(ResolutionMechanism mechanism, IncidentCategory category) const {
  return static_cast<int>(
      std::count_if(entries_.begin(), entries_.end(), [&](const IncidentResolution& r) {
        return r.mechanism == mechanism && r.incident.category() == category;
      }));
}

int ResolutionLog::CountBy(IncidentCategory category) const {
  return static_cast<int>(
      std::count_if(entries_.begin(), entries_.end(), [&](const IncidentResolution& r) {
        return r.incident.category() == category;
      }));
}

std::pair<SimDuration, SimDuration> ResolutionLog::MeanMaxResolution(
    IncidentSymptom symptom) const {
  SimDuration total = 0;
  SimDuration max = 0;
  int n = 0;
  for (const IncidentResolution& r : entries_) {
    if (r.incident.symptom != symptom || !r.resolved) {
      continue;
    }
    const SimDuration t = r.restart_done_time - r.localize_done_time;
    total += t;
    max = std::max(max, t);
    ++n;
  }
  if (n == 0) {
    return {0, 0};
  }
  return {total / n, max};
}

}  // namespace byterobust

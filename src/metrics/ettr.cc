#include "src/metrics/ettr.h"

#include <algorithm>

namespace byterobust {

void EttrTracker::OnStep(const StepRecord& record) {
  const SimDuration span = record.end - record.start;
  if (record.recompute) {
    recompute_ += span;
    return;
  }
  productive_ += span;
  ++productive_steps_;
  if (record.run_id != cached_run_id_) {
    cached_run_id_ = record.run_id;
    cached_run_total_ = &productive_by_run_[record.run_id];
  }
  *cached_run_total_ += span;
  productive_spans_.push_back({record.start, record.end});
  if (retention_ <= 0) {
    return;
  }
  // Fold spans that closed before the retained window. A sliding query at the
  // live edge walks backwards and stops at the first span with end <= lo, so
  // dropping exactly those spans leaves the walked set — and the summation
  // order — unchanged: bit-identical results, O(window) memory.
  const SimTime horizon = record.end - retention_;
  while (!productive_spans_.empty() && productive_spans_.front().end <= horizon) {
    folded_productive_ += productive_spans_.front().end - productive_spans_.front().start;
    ++spans_folded_;
    productive_spans_.pop_front();
  }
}

double EttrTracker::CumulativeEttr(SimTime now) const {
  const SimDuration wall = now - origin_;
  if (wall <= 0) {
    return 1.0;
  }
  return static_cast<double>(productive_) / static_cast<double>(wall);
}

double EttrTracker::SlidingEttr(SimTime now, SimDuration window) const {
  const SimTime lo = now - window;
  SimDuration in_window = 0;
  // Spans are appended in completion order; walk backwards until fully
  // before the window.
  for (auto it = productive_spans_.rbegin(); it != productive_spans_.rend(); ++it) {
    if (it->end <= lo) {
      break;
    }
    const SimTime s = std::max(it->start, lo);
    const SimTime e = std::min(it->end, now);
    if (e > s) {
      in_window += e - s;
    }
  }
  return static_cast<double>(in_window) / static_cast<double>(window);
}

void MfuSeries::OnStep(const StepRecord& record) {
  if (record.recompute) {
    return;
  }
  if (total_samples_ == 0 || record.mfu < min_mfu_) {
    min_mfu_ = record.mfu;
  }
  max_mfu_ = std::max(max_mfu_, record.mfu);
  mfu_sum_ += record.mfu;
  ++total_samples_;
  samples_.push_back({record.end, record.step, record.mfu, record.loss, record.run_id});
  if (retention_ <= 0) {
    return;
  }
  const SimTime horizon = record.end - retention_;
  while (!samples_.empty() && samples_.front().time <= horizon) {
    ++samples_folded_;
    samples_.pop_front();
  }
}

double MfuSeries::MinMfu() const { return total_samples_ == 0 ? 0.0 : min_mfu_; }

double MfuSeries::MaxMfu() const { return std::max(max_mfu_, 0.0); }

std::vector<double> MfuSeries::RelativeMfu() const {
  std::vector<double> out;
  const double min = MinMfu();
  if (min <= 0.0) {
    return out;
  }
  out.reserve(samples_.size());
  for (const auto& s : samples_) {
    out.push_back(s.mfu / min);
  }
  return out;
}

}  // namespace byterobust

#include "src/metrics/ettr.h"

#include <algorithm>

namespace byterobust {

void EttrTracker::OnStep(const StepRecord& record) {
  const SimDuration span = record.end - record.start;
  if (record.recompute) {
    recompute_ += span;
    return;
  }
  productive_ += span;
  ++productive_steps_;
  productive_spans_.push_back({record.start, record.end});
}

double EttrTracker::CumulativeEttr(SimTime now) const {
  const SimDuration wall = now - origin_;
  if (wall <= 0) {
    return 1.0;
  }
  return static_cast<double>(productive_) / static_cast<double>(wall);
}

double EttrTracker::SlidingEttr(SimTime now, SimDuration window) const {
  const SimTime lo = now - window;
  SimDuration in_window = 0;
  // Spans are appended in completion order; walk backwards until fully
  // before the window.
  for (auto it = productive_spans_.rbegin(); it != productive_spans_.rend(); ++it) {
    if (it->end <= lo) {
      break;
    }
    const SimTime s = std::max(it->start, lo);
    const SimTime e = std::min(it->end, now);
    if (e > s) {
      in_window += e - s;
    }
  }
  return static_cast<double>(in_window) / static_cast<double>(window);
}

void MfuSeries::OnStep(const StepRecord& record) {
  if (record.recompute) {
    return;
  }
  samples_.push_back({record.end, record.step, record.mfu, record.loss, record.run_id});
}

double MfuSeries::MinMfu() const {
  double min = 0.0;
  bool first = true;
  for (const auto& s : samples_) {
    if (first || s.mfu < min) {
      min = s.mfu;
      first = false;
    }
  }
  return min;
}

double MfuSeries::MaxMfu() const {
  double max = 0.0;
  for (const auto& s : samples_) {
    max = std::max(max, s.mfu);
  }
  return max;
}

std::vector<double> MfuSeries::RelativeMfu() const {
  std::vector<double> out;
  const double min = MinMfu();
  if (min <= 0.0) {
    return out;
  }
  out.reserve(samples_.size());
  for (const auto& s : samples_) {
    out.push_back(s.mfu / min);
  }
  return out;
}

}  // namespace byterobust

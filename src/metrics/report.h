// Campaign report export: CSV series for plotting the paper's figures
// (Figs. 2, 10, 11) and a resolution-log dump for offline analysis.

#ifndef SRC_METRICS_REPORT_H_
#define SRC_METRICS_REPORT_H_

#include <string>

#include "src/metrics/ettr.h"
#include "src/metrics/resolution.h"

namespace byterobust {

// CSV with columns: time_s, step, loss, mfu, relative_mfu, run_id.
// `stride` downsamples (every Nth sample).
std::string MfuSeriesCsv(const MfuSeries& series, int stride = 1);

// CSV with columns: time_s, cumulative_ettr, sliding_ettr_1h, sampled at
// `points` evenly spaced times over [0, end].
std::string EttrCurveCsv(const EttrTracker& tracker, SimTime end, int points = 100);

// CSV with columns: symptom, category, mechanism, root_cause, detection_s,
// localization_s, failover_s, total_s, escalations, resolved.
std::string ResolutionLogCsv(const ResolutionLog& log);

// Writes `content` to `path`; returns false on I/O failure.
bool WriteFile(const std::string& path, const std::string& content);

}  // namespace byterobust

#endif  // SRC_METRICS_REPORT_H_

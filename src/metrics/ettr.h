// ETTR accounting (paper Sec. 8.1.3): cumulative ETTR is productive training
// time over wall-clock time; sliding-window ETTR is the same ratio over a
// one-hour window, exposing the temporal dynamics of failure handling.
// Recomputed steps (work lost to restarts) are *not* productive.
//
// Windowed compaction: with a nonzero retention, closed spans/samples older
// than the trailing window are folded into running aggregates (sum, count,
// min/max, per-run totals) as steps arrive, so memory stays O(window) for
// month-scale campaigns while cumulative metrics and any sliding query at the
// live edge with window <= retention remain bit-identical to the unbounded
// tracker. Historical sliding queries (ETTR curves for plots) need the
// default retention of 0 (unbounded).

#ifndef SRC_METRICS_ETTR_H_
#define SRC_METRICS_ETTR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "src/common/sim_time.h"
#include "src/training/train_job.h"

namespace byterobust {

class EttrTracker {
 public:
  // `origin` is the campaign's wall-clock start. `retention` > 0 bounds the
  // retained span window (see the file comment); 0 keeps every span.
  explicit EttrTracker(SimTime origin = 0, SimDuration retention = 0)
      : origin_(origin), retention_(retention) {}

  // The hot-path cache below points into this tracker's own map; copies and
  // moves must drop it rather than alias the source's storage.
  EttrTracker(const EttrTracker& other) { *this = other; }
  EttrTracker& operator=(const EttrTracker& other) {
    if (this != &other) {
      origin_ = other.origin_;
      retention_ = other.retention_;
      productive_ = other.productive_;
      recompute_ = other.recompute_;
      productive_steps_ = other.productive_steps_;
      productive_by_run_ = other.productive_by_run_;
      spans_folded_ = other.spans_folded_;
      folded_productive_ = other.folded_productive_;
      productive_spans_ = other.productive_spans_;
      cached_run_id_ = -1;
      cached_run_total_ = nullptr;
    }
    return *this;
  }
  EttrTracker(EttrTracker&& other) noexcept
      : origin_(other.origin_),
        retention_(other.retention_),
        productive_(other.productive_),
        recompute_(other.recompute_),
        productive_steps_(other.productive_steps_),
        productive_by_run_(std::move(other.productive_by_run_)),
        spans_folded_(other.spans_folded_),
        folded_productive_(other.folded_productive_),
        productive_spans_(std::move(other.productive_spans_)) {
    other.cached_run_id_ = -1;
    other.cached_run_total_ = nullptr;
  }
  EttrTracker& operator=(EttrTracker&& other) noexcept {
    if (this != &other) {
      origin_ = other.origin_;
      retention_ = other.retention_;
      productive_ = other.productive_;
      recompute_ = other.recompute_;
      productive_steps_ = other.productive_steps_;
      productive_by_run_ = std::move(other.productive_by_run_);
      spans_folded_ = other.spans_folded_;
      folded_productive_ = other.folded_productive_;
      productive_spans_ = std::move(other.productive_spans_);
      cached_run_id_ = -1;
      cached_run_total_ = nullptr;
      other.cached_run_id_ = -1;
      other.cached_run_total_ = nullptr;
    }
    return *this;
  }

  // Feed every completed step (subscribe to TrainJob).
  void OnStep(const StepRecord& record);

  // Cumulative ETTR at time `now`.
  double CumulativeEttr(SimTime now) const;

  // ETTR over the trailing `window` ending at `now` (default one hour). With
  // a nonzero retention, exact only for `now` at/after the newest span and
  // `window` <= retention.
  double SlidingEttr(SimTime now, SimDuration window = Hours(1)) const;

  SimDuration productive_time() const { return productive_; }
  SimDuration recompute_time() const { return recompute_; }
  std::int64_t productive_steps() const { return productive_steps_; }

  // Productive time per run id (running aggregate, unaffected by compaction).
  const std::map<int, SimDuration>& productive_by_run() const { return productive_by_run_; }

  // Compaction statistics.
  SimDuration retention() const { return retention_; }
  std::size_t retained_spans() const { return productive_spans_.size(); }
  std::int64_t spans_folded() const { return spans_folded_; }
  SimDuration folded_productive() const { return folded_productive_; }

 private:
  struct Span {
    SimTime start;
    SimTime end;
  };

  SimTime origin_;
  SimDuration retention_;
  SimDuration productive_ = 0;
  SimDuration recompute_ = 0;
  std::int64_t productive_steps_ = 0;
  std::map<int, SimDuration> productive_by_run_;
  // Hot-path cache: steps arrive in run order, so the per-run total is one
  // pointer chase away instead of a map lookup per step (map nodes are
  // pointer-stable, so the cached slot survives later insertions).
  int cached_run_id_ = -1;
  SimDuration* cached_run_total_ = nullptr;
  std::int64_t spans_folded_ = 0;
  SimDuration folded_productive_ = 0;
  std::deque<Span> productive_spans_;  // sorted by end time (append order)
};

// A (time, mfu) sample series for Figs. 2 and 11.
struct MfuSample {
  SimTime time = 0;
  std::int64_t step = 0;
  double mfu = 0.0;
  double loss = 0.0;
  int run_id = 0;
};

class MfuSeries {
 public:
  void OnStep(const StepRecord& record);

  // With a nonzero retention, only the samples inside the trailing window.
  const std::deque<MfuSample>& samples() const { return samples_; }

  // Sets the trailing retention window; samples older than it are folded into
  // the running aggregates below as steps arrive. 0 (default) keeps all.
  void SetRetention(SimDuration retention) { retention_ = retention; }

  // Relative MFU: ratio of each *retained* sample to the series minimum
  // (paper Fig. 11). Covers the full series when retention is 0.
  std::vector<double> RelativeMfu() const;
  // Min/max over *every* sample ever observed (running aggregates, so they
  // are exact regardless of compaction).
  double MinMfu() const;
  double MaxMfu() const;

  std::int64_t total_samples() const { return total_samples_; }
  std::int64_t samples_folded() const { return samples_folded_; }
  double mfu_sum() const { return mfu_sum_; }

 private:
  SimDuration retention_ = 0;
  std::deque<MfuSample> samples_;
  std::int64_t total_samples_ = 0;
  std::int64_t samples_folded_ = 0;
  double mfu_sum_ = 0.0;
  double min_mfu_ = 0.0;
  double max_mfu_ = 0.0;
};

}  // namespace byterobust

#endif  // SRC_METRICS_ETTR_H_

// ETTR accounting (paper Sec. 8.1.3): cumulative ETTR is productive training
// time over wall-clock time; sliding-window ETTR is the same ratio over a
// one-hour window, exposing the temporal dynamics of failure handling.
// Recomputed steps (work lost to restarts) are *not* productive.

#ifndef SRC_METRICS_ETTR_H_
#define SRC_METRICS_ETTR_H_

#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"
#include "src/training/train_job.h"

namespace byterobust {

class EttrTracker {
 public:
  // `origin` is the campaign's wall-clock start.
  explicit EttrTracker(SimTime origin = 0) : origin_(origin) {}

  // Feed every completed step (subscribe to TrainJob).
  void OnStep(const StepRecord& record);

  // Cumulative ETTR at time `now`.
  double CumulativeEttr(SimTime now) const;

  // ETTR over the trailing `window` ending at `now` (default one hour).
  double SlidingEttr(SimTime now, SimDuration window = Hours(1)) const;

  SimDuration productive_time() const { return productive_; }
  SimDuration recompute_time() const { return recompute_; }
  std::int64_t productive_steps() const { return productive_steps_; }

 private:
  struct Span {
    SimTime start;
    SimTime end;
  };

  SimTime origin_;
  SimDuration productive_ = 0;
  SimDuration recompute_ = 0;
  std::int64_t productive_steps_ = 0;
  std::vector<Span> productive_spans_;  // sorted by end time (append order)
};

// A (time, mfu) sample series for Figs. 2 and 11.
struct MfuSample {
  SimTime time = 0;
  std::int64_t step = 0;
  double mfu = 0.0;
  double loss = 0.0;
  int run_id = 0;
};

class MfuSeries {
 public:
  void OnStep(const StepRecord& record);

  const std::vector<MfuSample>& samples() const { return samples_; }

  // Relative MFU: ratio of each sample to the series minimum (paper Fig. 11).
  std::vector<double> RelativeMfu() const;
  double MinMfu() const;
  double MaxMfu() const;

 private:
  std::vector<MfuSample> samples_;
};

}  // namespace byterobust

#endif  // SRC_METRICS_ETTR_H_

#include "src/metrics/domain_blast.h"

namespace byterobust {

int DomainBlastStats::RecordInjection(DomainLevel level, DomainFaultKind kind,
                                      int machines_affected, int jobs_affected,
                                      bool transient, SimTime inject_time) {
  DomainBlastEvent event;
  event.level = level;
  event.kind = kind;
  event.machines_affected = machines_affected;
  event.jobs_affected = jobs_affected;
  event.transient = transient;
  event.inject_time = inject_time;
  events_.push_back(event);
  return static_cast<int>(events_.size()) - 1;
}

void DomainBlastStats::RecordHeal(int event_index, double ettr_delta) {
  DomainBlastEvent& event = events_.at(static_cast<std::size_t>(event_index));
  event.healed = true;
  event.ettr_delta = ettr_delta;
}

std::map<int, DomainBlastLevelSummary> DomainBlastStats::SummaryByLevel() const {
  std::map<int, DomainBlastLevelSummary> by_level;
  for (const DomainBlastEvent& event : events_) {
    DomainBlastLevelSummary& s = by_level[static_cast<int>(event.level)];
    ++s.events;
    if (event.transient) {
      ++s.transient_events;
    }
    ++s.machines_hist[event.machines_affected];
    ++s.jobs_hist[event.jobs_affected];
    if (event.healed) {
      ++s.healed_events;
      s.ettr_delta_sum += event.ettr_delta;
    }
  }
  return by_level;
}

}  // namespace byterobust

// Incident-resolution records: which mechanism resolved each incident and how
// the unproductive time decomposed into detection / localization / failover
// (paper Fig. 3, Table 4, Table 6).

#ifndef SRC_METRICS_RESOLUTION_H_
#define SRC_METRICS_RESOLUTION_H_

#include <map>
#include <vector>

#include "src/common/sim_time.h"
#include "src/faults/incident.h"

namespace byterobust {

// Resolution mechanisms (Table 4 plus the Sec. 4.2 lesson's finer classes).
enum class ResolutionMechanism {
  kAutoFtEvictRestart,    // AutoFT-ER: real-time/stop-time eviction + restart
  kAutoFtHotUpdate,       // AutoFT-HU: in-place hot update (manual restarts)
  kAnalyzerEvictRestart,  // Analyzer-ER: aggregation analysis over-eviction
  kRollback,              // code rollback to the previous stable version
  kReattempt,             // plain restart for transient faults
  kDualPhaseReplay,       // Alg. 1 group testing, then eviction
  kUnresolvedHuman,       // escalated to humans (no automated conclusion)
};

const char* MechanismName(ResolutionMechanism mechanism);

struct IncidentResolution {
  Incident incident;
  ResolutionMechanism mechanism = ResolutionMechanism::kAutoFtEvictRestart;
  // Unproductive-time breakdown (Fig. 3).
  SimTime inject_time = 0;
  SimTime detect_time = 0;         // anomaly reported
  SimTime localize_done_time = 0;  // faulty set decided (checks finished)
  SimTime restart_done_time = 0;   // training resumed
  int escalations = 0;             // how many Fig. 5 stages were traversed
  bool resolved = false;

  SimDuration DetectionTime() const { return detect_time - inject_time; }
  SimDuration LocalizationTime() const { return localize_done_time - detect_time; }
  SimDuration FailoverTime() const { return restart_done_time - localize_done_time; }
  SimDuration TotalUnproductive() const { return restart_done_time - inject_time; }
};

class ResolutionLog {
 public:
  void Add(IncidentResolution resolution);

  const std::vector<IncidentResolution>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  // Count of resolved incidents per mechanism, optionally filtered by
  // incident category (Table 4's columns).
  int CountBy(ResolutionMechanism mechanism) const;
  int CountBy(ResolutionMechanism mechanism, IncidentCategory category) const;
  int CountBy(IncidentCategory category) const;

  // Mean / max resolution time (localization -> restart, Table 6's metric)
  // across incidents with the given symptom. Returns {0, 0} when none.
  std::pair<SimDuration, SimDuration> MeanMaxResolution(IncidentSymptom symptom) const;

 private:
  std::vector<IncidentResolution> entries_;
};

}  // namespace byterobust

#endif  // SRC_METRICS_RESOLUTION_H_

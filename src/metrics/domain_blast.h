// Per-domain blast-radius accounting for correlated fault injection
// (src/faults/domain_injector.h), generalizing the fleet switch-storm
// histogram of PR 5: every domain fault records the machines and jobs it
// touched plus — once it heals — the cumulative-ETTR delta it cost, and the
// campaign JSON reports histograms of those per domain level.

#ifndef SRC_METRICS_DOMAIN_BLAST_H_
#define SRC_METRICS_DOMAIN_BLAST_H_

#include <map>
#include <vector>

#include "src/common/sim_time.h"
#include "src/faults/domain_injector.h"

namespace byterobust {

// One correlated fault event, from injection to (optional) heal.
struct DomainBlastEvent {
  DomainLevel level = DomainLevel::kTor;
  DomainFaultKind kind = DomainFaultKind::kSpineFlap;
  int machines_affected = 0;
  int jobs_affected = 0;
  bool transient = false;
  SimTime inject_time = 0;
  bool healed = false;
  // CumulativeEttr(heal) - CumulativeEttr(inject): the ETTR ground the event
  // cost (usually negative). 0 until healed.
  double ettr_delta = 0.0;
};

// Aggregation of the events at one domain level.
struct DomainBlastLevelSummary {
  int events = 0;
  int transient_events = 0;
  int healed_events = 0;
  std::map<int, int> machines_hist;  // machines_affected -> event count
  std::map<int, int> jobs_hist;      // jobs_affected -> event count
  double ettr_delta_sum = 0.0;       // over healed events

  double MeanEttrDelta() const {
    return healed_events > 0 ? ettr_delta_sum / healed_events : 0.0;
  }
};

class DomainBlastStats {
 public:
  // Records an injection; returns the event's index for RecordHeal.
  int RecordInjection(DomainLevel level, DomainFaultKind kind, int machines_affected,
                      int jobs_affected, bool transient, SimTime inject_time);

  // Marks the event healed and stores its ETTR delta.
  void RecordHeal(int event_index, double ettr_delta);

  bool empty() const { return events_.empty(); }
  const std::vector<DomainBlastEvent>& events() const { return events_; }

  // Per-level aggregation, keyed by DomainLevel cast to int (ordered map so
  // JSON emission is deterministic).
  std::map<int, DomainBlastLevelSummary> SummaryByLevel() const;

 private:
  std::vector<DomainBlastEvent> events_;
};

}  // namespace byterobust

#endif  // SRC_METRICS_DOMAIN_BLAST_H_

#include "src/metrics/report.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace byterobust {

std::string MfuSeriesCsv(const MfuSeries& series, int stride) {
  std::ostringstream out;
  out << "time_s,step,loss,mfu,relative_mfu,run_id\n";
  const auto& samples = series.samples();
  if (samples.empty()) {
    return out.str();
  }
  const double base = samples.front().mfu;
  char line[160];
  for (std::size_t i = 0; i < samples.size(); i += static_cast<std::size_t>(stride > 0 ? stride : 1)) {
    const MfuSample& s = samples[i];
    std::snprintf(line, sizeof(line), "%.1f,%lld,%.6f,%.4f,%.4f,%d\n", ToSeconds(s.time),
                  static_cast<long long>(s.step), s.loss, s.mfu,
                  base > 0 ? s.mfu / base : 0.0, s.run_id);
    out << line;
  }
  return out.str();
}

std::string EttrCurveCsv(const EttrTracker& tracker, SimTime end, int points) {
  std::ostringstream out;
  out << "time_s,cumulative_ettr,sliding_ettr_1h\n";
  if (points <= 0 || end <= 0) {
    return out.str();
  }
  char line[96];
  for (int i = 1; i <= points; ++i) {
    const SimTime t = end / points * i;
    std::snprintf(line, sizeof(line), "%.1f,%.5f,%.5f\n", ToSeconds(t),
                  tracker.SlidingEttr(t, t), tracker.SlidingEttr(t, Hours(1)));
    out << line;
  }
  return out.str();
}

std::string ResolutionLogCsv(const ResolutionLog& log) {
  std::ostringstream out;
  out << "symptom,category,mechanism,root_cause,detection_s,localization_s,failover_s,"
         "total_s,escalations,resolved\n";
  char line[256];
  for (const IncidentResolution& r : log.entries()) {
    std::snprintf(line, sizeof(line), "%s,%s,%s,%s,%.1f,%.1f,%.1f,%.1f,%d,%d\n",
                  SymptomName(r.incident.symptom), CategoryName(r.incident.category()),
                  MechanismName(r.mechanism), RootCauseName(r.incident.root_cause),
                  ToSeconds(r.DetectionTime()), ToSeconds(r.LocalizationTime()),
                  ToSeconds(r.FailoverTime()), ToSeconds(r.TotalUnproductive()),
                  r.escalations, r.resolved ? 1 : 0);
    out << line;
  }
  return out.str();
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return false;
  }
  file << content;
  return static_cast<bool>(file);
}

}  // namespace byterobust

// MegaScale-style RDMA traffic monitoring (baseline from the paper's related
// work, Sec. 10): plummeting RDMA traffic indicates an implicit failure
// earlier than log-based timeouts, but it cannot isolate which machines are
// at fault — the gap ByteRobust's stack aggregation closes.

#ifndef SRC_MONITOR_RDMA_MONITOR_H_
#define SRC_MONITOR_RDMA_MONITOR_H_

#include <cstdint>
#include <optional>

#include "src/common/sim_time.h"
#include "src/training/train_job.h"

namespace byterobust {

// Normalized per-machine RDMA traffic for the given job state: ~1.0 with
// sampling noise while training progresses, ~0 when the job hangs or
// crashes (collectives stall globally — on *every* machine at once, which is
// precisely why traffic cannot localize the fault).
double SyntheticRdmaTraffic(JobRunState state, SimTime now, std::uint64_t seed);

struct RdmaDetectorConfig {
  SimDuration sample_interval = Seconds(10);
  // Consecutive low-traffic samples before alerting.
  int low_samples_to_alert = 6;
  double low_traffic_threshold = 0.05;
};

// Sliding detector over the traffic signal.
class RdmaHangDetector {
 public:
  explicit RdmaHangDetector(const RdmaDetectorConfig& config = {}) : config_(config) {}

  // Feeds one sample; returns the detection timestamp when the alert fires
  // (once per quiet period).
  std::optional<SimTime> OnSample(SimTime now, double traffic);

  void Reset();
  bool fired() const { return fired_; }
  const RdmaDetectorConfig& config() const { return config_; }

 private:
  RdmaDetectorConfig config_;
  int low_run_ = 0;
  bool fired_ = false;
};

}  // namespace byterobust

#endif  // SRC_MONITOR_RDMA_MONITOR_H_

// System-inspection items: lightweight health queries run at second-level
// intervals, transparent to the training job (paper Sec. 4.1 and Table 3).

#ifndef SRC_MONITOR_INSPECTION_H_
#define SRC_MONITOR_INSPECTION_H_

#include <map>
#include <optional>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/sim_time.h"
#include "src/monitor/anomaly.h"

namespace byterobust {

enum class InspectionCategory {
  kNetwork,  // NIC down/jitter, packet loss, switch reachability
  kGpu,      // DCGM status, availability, HBM, temperature
  kHost,     // OS kernel events (Xid/dmesg), disk, CPU, host memory
};

const char* InspectionCategoryName(InspectionCategory category);

// Packet-loss rate above which the network inspection raises an
// InfinibandError finding. The controller's post-debounce recheck uses the
// same value (ControllerConfig::debounce_packet_loss_threshold defaults to
// it), so a flap that drops below this is "healed" consistently in both
// places.
inline constexpr double kNetworkPacketLossAlert = 0.1;

// Per-category polling intervals (Table 3: network 30 s, GPU 10 s, host 2 s).
struct InspectionIntervals {
  SimDuration network = Seconds(30);
  SimDuration gpu = Seconds(10);
  SimDuration host = Seconds(2);

  SimDuration For(InspectionCategory category) const;
};

// One concrete finding from scanning a machine.
struct InspectionFinding {
  IncidentSymptom symptom;
  MachineId machine;
  bool high_confidence;
};

// Pure inspection pass for one category over the serving machines (iterated
// through the cluster's health-dirty suspect index, so a healthy cluster pays
// O(1) per pass instead of O(machines)). Switch unreachability is reported on
// every pass; the caller applies the two-consecutive-events threshold.
std::vector<InspectionFinding> RunInspection(InspectionCategory category, const Cluster& cluster);

}  // namespace byterobust

#endif  // SRC_MONITOR_INSPECTION_H_

// The data-plane Monitor: runs inspection threads at per-category intervals,
// watches training metrics, and reports anomalies to the robust controller
// (paper Sec. 4.1).
//
// Quiescent monitoring (the default): inspection passes and the hang/crash
// watchdog stay on the same fixed time grid as the periodic reference path
// (anchor + k * interval), but stop re-arming while they provably cannot find
// anything — inspections while Cluster::SuspectServingMachines() is empty,
// the watchdog while the job is progressing and no hang can fire before
// last_progress + hang_grace. The cluster's health-epoch waker and a TrainJob
// state observer re-arm them on demand, so monitoring event traffic is
// proportional to incidents, not simulated time, and the batched step loop
// runs unimpeded between incidents. Setting BYTEROBUST_QUIESCENT_MONITOR=0
// (or MonitorConfig::quiescent = false) pins the periodic reference path;
// campaign JSON is byte-identical either way.

#ifndef SRC_MONITOR_MONITOR_H_
#define SRC_MONITOR_MONITOR_H_

#include <map>
#include <set>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/monitor/anomaly.h"
#include "src/monitor/inspection.h"
#include "src/monitor/metrics_rules.h"
#include "src/sim/simulator.h"
#include "src/training/train_job.h"

namespace byterobust {

struct MonitorConfig {
  InspectionIntervals intervals;
  MetricsRulesConfig metrics;

  // Crash detection latency through log/exit-code scraping (~60 s, Sec. 2.2).
  SimDuration log_scrape_interval = Seconds(60);

  // Hang watchdog: declare a hang suspect when no step completed within
  // max(hang_grace, hang_step_factor x expected step time). This models the
  // "zero RDMA traffic within 10 minutes" rule of Sec. 4.1.
  SimDuration hang_grace = Minutes(10);
  double hang_step_factor = 4.0;
  SimDuration watchdog_interval = Seconds(30);

  // Consecutive unresponsive-switch events required before alerting.
  int switch_event_threshold = 2;

  // Quiescence-driven scheduling (see the file comment). The env knob
  // BYTEROBUST_QUIESCENT_MONITOR=0 overrides this to false process-wide.
  bool quiescent = true;
};

class Monitor {
 public:
  Monitor(const MonitorConfig& config, Simulator* sim, Cluster* cluster, TrainJob* job);

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  void SetAnomalyHandler(AnomalyHandler handler) { handler_ = std::move(handler); }

  // Starts the recurring inspection + watchdog events.
  void Start();
  void Stop();
  bool running() const { return running_; }

  // True when this monitor runs the quiescent schedule (config && env).
  bool quiescent() const { return quiescent_; }

  // Clears per-run state (outstanding alerts, metric baselines) after the
  // controller restarts the job.
  void OnJobRestart();

  // Number of anomaly reports emitted.
  std::uint64_t reports_emitted() const { return reports_emitted_; }

 private:
  static constexpr int kNumCategories = 3;
  static int CategoryIndex(InspectionCategory category) { return static_cast<int>(category); }

  void RunInspectionPass(InspectionCategory category);
  void RunWatchdog();
  void OnStepRecord(const StepRecord& record);
  void OnJobStateChange(JobRunState state);
  void Emit(AnomalyReport report);

  // -- quiescent scheduling helpers ------------------------------------------

  // First grid tick (anchor + k * interval, k >= 1) strictly after / at-or-
  // after `t`. The grid is what the periodic chain would have fired on, so a
  // re-armed pass lands exactly where the reference path's pass would.
  SimTime NextTickAfter(SimTime t, SimDuration interval) const;
  SimTime NextTickAtOrAfter(SimTime t, SimDuration interval) const;

  // Re-arms the pass for `category` (quiescent: only while suspects exist,
  // else parks on the cluster's mutation waker).
  void ArmInspection(InspectionCategory category);
  void ArmAllInspections();
  // Registers the one-shot cluster mutation waker (idempotent).
  void EnsureMutationWake();
  // (Re)computes when the watchdog must next run and (re)schedules the single
  // armed watchdog event accordingly; disarms when no predicate can fire
  // without an intervening state change.
  void ArmWatchdog();

  MonitorConfig config_;
  Simulator* sim_;
  Cluster* cluster_;
  TrainJob* job_;
  AnomalyHandler handler_;

  bool running_ = false;
  bool quiescent_ = true;
  std::uint64_t reports_emitted_ = 0;
  // De-duplication: (machine, symptom) pairs already reported this run.
  std::set<std::pair<MachineId, int>> outstanding_;
  std::map<MachineId, int> switch_event_counts_;
  MetricsRules rules_;
  bool crash_reported_ = false;
  bool hang_reported_ = false;

  // Quiescent-mode state. The anchor pins the periodic grid at Start() time.
  SimTime anchor_ = 0;
  bool inspection_armed_[kNumCategories] = {false, false, false};
  bool wake_requested_ = false;
  EventId watchdog_event_ = kInvalidEventId;
  SimTime watchdog_due_ = 0;
  // Why the armed wake exists. A crash-armed wake is enqueued by the crash
  // transition itself, so it sits *behind* any same-tick inspection passes
  // (armed moments earlier by the same incident's mutation waker) — exactly
  // where the periodic watchdog's crash check effectively lands, because a
  // same-tick pass that stops the job pre-empts it. A hang-armed wake was
  // enqueued long before the crash and would jump that queue, so it must not
  // evaluate the crash branch; discovering a pending crash, it re-arms a
  // same-timestamp crash wake at the back of the bucket instead.
  bool watchdog_crash_armed_ = false;
};

}  // namespace byterobust

#endif  // SRC_MONITOR_MONITOR_H_

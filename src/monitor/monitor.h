// The data-plane Monitor: runs inspection threads at per-category intervals,
// watches training metrics, and reports anomalies to the robust controller
// (paper Sec. 4.1).

#ifndef SRC_MONITOR_MONITOR_H_
#define SRC_MONITOR_MONITOR_H_

#include <map>
#include <set>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/monitor/anomaly.h"
#include "src/monitor/inspection.h"
#include "src/monitor/metrics_rules.h"
#include "src/sim/simulator.h"
#include "src/training/train_job.h"

namespace byterobust {

struct MonitorConfig {
  InspectionIntervals intervals;
  MetricsRulesConfig metrics;

  // Crash detection latency through log/exit-code scraping (~60 s, Sec. 2.2).
  SimDuration log_scrape_interval = Seconds(60);

  // Hang watchdog: declare a hang suspect when no step completed within
  // max(hang_grace, hang_step_factor x expected step time). This models the
  // "zero RDMA traffic within 10 minutes" rule of Sec. 4.1.
  SimDuration hang_grace = Minutes(10);
  double hang_step_factor = 4.0;
  SimDuration watchdog_interval = Seconds(30);

  // Consecutive unresponsive-switch events required before alerting.
  int switch_event_threshold = 2;
};

class Monitor {
 public:
  Monitor(const MonitorConfig& config, Simulator* sim, Cluster* cluster, TrainJob* job);

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  void SetAnomalyHandler(AnomalyHandler handler) { handler_ = std::move(handler); }

  // Starts the recurring inspection + watchdog events.
  void Start();
  void Stop();
  bool running() const { return running_; }

  // Clears per-run state (outstanding alerts, metric baselines) after the
  // controller restarts the job.
  void OnJobRestart();

  // Number of anomaly reports emitted.
  std::uint64_t reports_emitted() const { return reports_emitted_; }

 private:
  void RunInspectionPass(InspectionCategory category);
  void RunWatchdog();
  void OnStepRecord(const StepRecord& record);
  void Emit(AnomalyReport report);

  MonitorConfig config_;
  Simulator* sim_;
  Cluster* cluster_;
  TrainJob* job_;
  AnomalyHandler handler_;

  bool running_ = false;
  std::uint64_t reports_emitted_ = 0;
  // De-duplication: (machine, symptom) pairs already reported this run.
  std::set<std::pair<MachineId, int>> outstanding_;
  std::map<MachineId, int> switch_event_counts_;
  MetricsRules rules_;
  bool crash_reported_ = false;
  bool hang_reported_ = false;
};

}  // namespace byterobust

#endif  // SRC_MONITOR_MONITOR_H_

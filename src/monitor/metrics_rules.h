// Training-metric anomaly rules (paper Sec. 4.1 "Metrics collection"):
// NaN values, 5x loss / gradient-norm spikes, sustained MFU decline, and the
// hang watchdog over progress events (zero RDMA traffic proxy).

#ifndef SRC_MONITOR_METRICS_RULES_H_
#define SRC_MONITOR_METRICS_RULES_H_

#include <deque>
#include <optional>
#include <set>

#include "src/common/sim_time.h"
#include "src/monitor/anomaly.h"
#include "src/training/train_job.h"

namespace byterobust {

struct MetricsRulesConfig {
  // Spike rule: alert when loss or grad norm exceeds `spike_factor` times the
  // trailing-window median.
  double spike_factor = 5.0;
  int trailing_window = 32;

  // MFU-decline rule: alert when MFU stays below `decline_ratio` x the
  // trailing high-water mark for `decline_steps` consecutive steps.
  double decline_ratio = 0.8;
  int decline_steps = 5;
};

class MetricsRules {
 public:
  explicit MetricsRules(const MetricsRulesConfig& config) : config_(config) {}

  // Feeds one completed step; returns an anomaly if a rule fires.
  std::optional<AnomalyReport> OnStep(const StepRecord& record);

  // Clears history (after a restart or rollback the baselines reset).
  void Reset();

 private:
  // Upper median of the trailing window (the value a copy-and-sort of
  // recent_loss_ would put at index size()/2), served in O(1) from the
  // dual-multiset structure below.
  double TrailingMedianLoss() const;

  void MedianInsert(double value);
  void MedianErase(double value);
  void MedianRebalance();

  MetricsRulesConfig config_;
  std::deque<double> recent_loss_;  // insertion order, for window eviction
  // Order-statistic split of recent_loss_: low_ holds the smaller half
  // (size()/2 elements), high_ the rest, so *high_.begin() is the upper
  // median. Insert/erase are O(log window) instead of the O(w log w)
  // copy-and-sort the spike rule used to pay per step.
  std::multiset<double> low_;
  std::multiset<double> high_;
  double mfu_high_water_ = 0.0;
  int decline_run_ = 0;
};

}  // namespace byterobust

#endif  // SRC_MONITOR_METRICS_RULES_H_

// Training-metric anomaly rules (paper Sec. 4.1 "Metrics collection"):
// NaN values, 5x loss / gradient-norm spikes, sustained MFU decline, and the
// hang watchdog over progress events (zero RDMA traffic proxy).

#ifndef SRC_MONITOR_METRICS_RULES_H_
#define SRC_MONITOR_METRICS_RULES_H_

#include <deque>
#include <optional>
#include <vector>

#include "src/common/sim_time.h"
#include "src/monitor/anomaly.h"
#include "src/training/train_job.h"

namespace byterobust {

struct MetricsRulesConfig {
  // Spike rule: alert when loss or grad norm exceeds `spike_factor` times the
  // trailing-window median.
  double spike_factor = 5.0;
  int trailing_window = 32;

  // MFU-decline rule: alert when MFU stays below `decline_ratio` x the
  // trailing high-water mark for `decline_steps` consecutive steps.
  double decline_ratio = 0.8;
  int decline_steps = 5;
};

class MetricsRules {
 public:
  explicit MetricsRules(const MetricsRulesConfig& config) : config_(config) {}

  // Feeds one completed step; returns an anomaly if a rule fires.
  std::optional<AnomalyReport> OnStep(const StepRecord& record);

  // Clears history (after a restart or rollback the baselines reset).
  void Reset();

 private:
  // Upper median of the trailing window (the value a copy-and-sort of
  // recent_loss_ would put at index size()/2), served in O(1) from the
  // sorted window below.
  double TrailingMedianLoss() const;

  void MedianInsert(double value);
  void MedianErase(double value);

  MetricsRulesConfig config_;
  std::deque<double> recent_loss_;  // insertion order, for window eviction
  // recent_loss_ kept in sorted order. The window is small (32 by default),
  // so a flat vector with memmove-style insert/erase beats per-node
  // allocating tree structures on the per-step hot path while serving the
  // median as sorted_loss_[size() / 2].
  std::vector<double> sorted_loss_;
  double mfu_high_water_ = 0.0;
  int decline_run_ = 0;
};

}  // namespace byterobust

#endif  // SRC_MONITOR_METRICS_RULES_H_

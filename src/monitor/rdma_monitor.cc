#include "src/monitor/rdma_monitor.h"

namespace byterobust {

namespace {
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace

double SyntheticRdmaTraffic(JobRunState state, SimTime now, std::uint64_t seed) {
  if (state != JobRunState::kRunning) {
    // Stalled collectives: residual keep-alive chatter only.
    return 0.01;
  }
  const std::uint64_t h = Mix(seed ^ static_cast<std::uint64_t>(now / Seconds(10)));
  const double noise = static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
  return 0.85 + 0.3 * noise;  // bursty but clearly nonzero
}

std::optional<SimTime> RdmaHangDetector::OnSample(SimTime now, double traffic) {
  if (traffic >= config_.low_traffic_threshold) {
    low_run_ = 0;
    fired_ = false;
    return std::nullopt;
  }
  if (fired_) {
    return std::nullopt;  // one alert per quiet period
  }
  if (++low_run_ >= config_.low_samples_to_alert) {
    fired_ = true;
    return now;
  }
  return std::nullopt;
}

void RdmaHangDetector::Reset() {
  low_run_ = 0;
  fired_ = false;
}

}  // namespace byterobust

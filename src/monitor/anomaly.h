// Anomaly reports flowing from the data-plane monitor to the robust
// controller (paper Sec. 4.1, step 1).

#ifndef SRC_MONITOR_ANOMALY_H_
#define SRC_MONITOR_ANOMALY_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/faults/incident.h"
#include "src/topology/parallelism.h"

namespace byterobust {

enum class AnomalySource {
  kInspection,   // system-inspection thread hit (network / GPU / host item)
  kCrashLog,     // error messages / exit codes in stdout+stderr
  kMetricNan,    // NaN loss or gradient norm
  kMetricSpike,  // >= 5x jump in loss / grad norm
  kHangSuspect,  // no training progress within the hang threshold
  kMfuDecline,   // sustained MFU drop without a fail-stop
};

const char* AnomalySourceName(AnomalySource source);

struct AnomalyReport {
  AnomalySource source = AnomalySource::kInspection;
  IncidentSymptom symptom_hint = IncidentSymptom::kCudaError;
  // Machines the signal points at. Empty when nothing is localized (typical
  // for metric anomalies: NaN propagates everywhere, Sec. 2.3).
  std::vector<MachineId> machines;
  // High-confidence signals (GPU unavailable, disk fault, kernel panic) let
  // the controller evict immediately, skipping stop-time diagnostics.
  bool high_confidence = false;
  SimTime detect_time = 0;
  std::string detail;
};

using AnomalyHandler = std::function<void(const AnomalyReport&)>;

}  // namespace byterobust

#endif  // SRC_MONITOR_ANOMALY_H_

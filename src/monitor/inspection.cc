#include "src/monitor/inspection.h"

namespace byterobust {

const char* InspectionCategoryName(InspectionCategory category) {
  switch (category) {
    case InspectionCategory::kNetwork:
      return "network";
    case InspectionCategory::kGpu:
      return "gpu";
    case InspectionCategory::kHost:
      return "host";
  }
  return "unknown";
}

SimDuration InspectionIntervals::For(InspectionCategory category) const {
  switch (category) {
    case InspectionCategory::kNetwork:
      return network;
    case InspectionCategory::kGpu:
      return gpu;
    case InspectionCategory::kHost:
      return host;
  }
  return Seconds(30);
}

std::vector<InspectionFinding> RunInspection(InspectionCategory category,
                                             const Cluster& cluster) {
  std::vector<InspectionFinding> findings;
  // Only health-dirty serving machines can produce findings: a machine absent
  // from the suspect index has had no mutable health access since its last
  // ResetHealth, so every checked attribute below still holds its nominal
  // value. Iterating the (slot-ordered) suspect list therefore yields exactly
  // the findings of a full-cluster scan at a fraction of the cost.
  for (MachineId id : cluster.SuspectServingMachines()) {
    const Machine& m = cluster.machine(id);
    switch (category) {
      case InspectionCategory::kNetwork: {
        if (!m.host().nic_up || m.host().packet_loss_rate > kNetworkPacketLossAlert) {
          findings.push_back({IncidentSymptom::kInfinibandError, id, false});
        }
        if (!m.host().switch_reachable) {
          // Reported on every pass; the monitor requires two consecutive
          // unresponsive-switch events before alerting (Table 3: 30 * 2 s).
          findings.push_back({IncidentSymptom::kInfinibandError, id, false});
        }
        break;
      }
      case InspectionCategory::kGpu: {
        for (int g = 0; g < m.num_gpus(); ++g) {
          const GpuHealth& gpu = m.gpu(g);
          if (!gpu.available) {
            findings.push_back({IncidentSymptom::kGpuUnavailable, id, true});
          } else if (!gpu.dcgm_responsive) {
            findings.push_back({IncidentSymptom::kCudaError, id, false});
          } else if (!gpu.hbm_ok) {
            findings.push_back({IncidentSymptom::kGpuMemoryError, id, false});
          } else if (gpu.temperature_c > 85.0) {
            // Overheating correlates with MFU degradation: gray failure from
            // thermal throttling (Sec. 8.1.1).
            findings.push_back({IncidentSymptom::kMfuDecline, id, false});
          }
          // gpu.sdc and gpu.comm_defect are *silent*: no inspection sees them.
        }
        break;
      }
      case InspectionCategory::kHost: {
        if (!m.host().os_kernel_ok) {
          findings.push_back({IncidentSymptom::kOsKernelPanic, id, true});
        }
        if (!m.host().disk_ok) {
          findings.push_back({IncidentSymptom::kDiskFault, id, true});
        }
        if (m.host().free_disk_fraction < 0.05) {
          findings.push_back({IncidentSymptom::kInsufficientDiskSpace, id, false});
        }
        if (m.host().cpu_load > 0.95) {
          findings.push_back({IncidentSymptom::kCpuOverload, id, false});
        }
        if (m.host().free_host_mem_fraction < 0.02) {
          findings.push_back({IncidentSymptom::kCpuOom, id, false});
        }
        break;
      }
    }
  }
  return findings;
}

}  // namespace byterobust

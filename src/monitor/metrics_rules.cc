#include "src/monitor/metrics_rules.h"

#include <algorithm>
#include <cmath>

namespace byterobust {

std::optional<AnomalyReport> MetricsRules::OnStep(const StepRecord& record) {
  AnomalyReport report;
  report.detect_time = record.end;

  if (record.is_nan || std::isnan(record.loss) || std::isnan(record.grad_norm)) {
    report.source = AnomalySource::kMetricNan;
    report.symptom_hint = IncidentSymptom::kNanValue;
    report.detail = "NaN loss/grad-norm";
    return report;
  }

  // Spike detection against the trailing median.
  if (static_cast<int>(recent_loss_.size()) >= config_.trailing_window / 2) {
    const double median = TrailingMedianLoss();
    if (median > 0.0 && record.loss > config_.spike_factor * median) {
      report.source = AnomalySource::kMetricSpike;
      report.symptom_hint = IncidentSymptom::kNanValue;  // treated like loss anomaly
      report.detail = "loss spike > 5x trailing median";
      recent_loss_.clear();
      low_.clear();
      high_.clear();
      return report;
    }
  }
  recent_loss_.push_back(record.loss);
  MedianInsert(record.loss);
  while (static_cast<int>(recent_loss_.size()) > config_.trailing_window) {
    MedianErase(recent_loss_.front());
    recent_loss_.pop_front();
  }

  // MFU decline: compare to the high-water mark of this run.
  mfu_high_water_ = std::max(mfu_high_water_, record.mfu);
  if (mfu_high_water_ > 0.0 && record.mfu < config_.decline_ratio * mfu_high_water_) {
    ++decline_run_;
    if (decline_run_ >= config_.decline_steps) {
      decline_run_ = 0;
      report.source = AnomalySource::kMfuDecline;
      report.symptom_hint = IncidentSymptom::kMfuDecline;
      report.detail = "sustained MFU decline";
      return report;
    }
  } else {
    decline_run_ = 0;
  }
  return std::nullopt;
}

void MetricsRules::Reset() {
  recent_loss_.clear();
  low_.clear();
  high_.clear();
  mfu_high_water_ = 0.0;
  decline_run_ = 0;
}

double MetricsRules::TrailingMedianLoss() const {
  return high_.empty() ? 0.0 : *high_.begin();
}

void MetricsRules::MedianInsert(double value) {
  if (high_.empty() || value >= *high_.begin()) {
    high_.insert(value);
  } else {
    low_.insert(value);
  }
  MedianRebalance();
}

void MetricsRules::MedianErase(double value) {
  // Everything >= the current median lives in high_; with value drawn from
  // the window, the find() below cannot miss.
  if (!high_.empty() && value >= *high_.begin()) {
    high_.erase(high_.find(value));
  } else {
    low_.erase(low_.find(value));
  }
  MedianRebalance();
}

void MetricsRules::MedianRebalance() {
  // Invariant: |low_| == size()/2, so *high_.begin() is the upper median.
  while (low_.size() > (low_.size() + high_.size()) / 2) {
    high_.insert(*low_.rbegin());
    low_.erase(std::prev(low_.end()));
  }
  while (low_.size() < (low_.size() + high_.size()) / 2) {
    low_.insert(*high_.begin());
    high_.erase(high_.begin());
  }
}

}  // namespace byterobust

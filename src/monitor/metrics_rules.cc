#include "src/monitor/metrics_rules.h"

#include <algorithm>
#include <cmath>

namespace byterobust {

std::optional<AnomalyReport> MetricsRules::OnStep(const StepRecord& record) {
  AnomalyReport report;
  report.detect_time = record.end;

  if (record.is_nan || std::isnan(record.loss) || std::isnan(record.grad_norm)) {
    report.source = AnomalySource::kMetricNan;
    report.symptom_hint = IncidentSymptom::kNanValue;
    report.detail = "NaN loss/grad-norm";
    return report;
  }

  // Spike detection against the trailing median.
  if (static_cast<int>(recent_loss_.size()) >= config_.trailing_window / 2) {
    const double median = TrailingMedianLoss();
    if (median > 0.0 && record.loss > config_.spike_factor * median) {
      report.source = AnomalySource::kMetricSpike;
      report.symptom_hint = IncidentSymptom::kNanValue;  // treated like loss anomaly
      report.detail = "loss spike > 5x trailing median";
      recent_loss_.clear();
      sorted_loss_.clear();
      return report;
    }
  }
  recent_loss_.push_back(record.loss);
  MedianInsert(record.loss);
  while (static_cast<int>(recent_loss_.size()) > config_.trailing_window) {
    MedianErase(recent_loss_.front());
    recent_loss_.pop_front();
  }

  // MFU decline: compare to the high-water mark of this run.
  mfu_high_water_ = std::max(mfu_high_water_, record.mfu);
  if (mfu_high_water_ > 0.0 && record.mfu < config_.decline_ratio * mfu_high_water_) {
    ++decline_run_;
    if (decline_run_ >= config_.decline_steps) {
      decline_run_ = 0;
      report.source = AnomalySource::kMfuDecline;
      report.symptom_hint = IncidentSymptom::kMfuDecline;
      report.detail = "sustained MFU decline";
      return report;
    }
  } else {
    decline_run_ = 0;
  }
  return std::nullopt;
}

void MetricsRules::Reset() {
  recent_loss_.clear();
  sorted_loss_.clear();
  mfu_high_water_ = 0.0;
  decline_run_ = 0;
}

double MetricsRules::TrailingMedianLoss() const {
  return sorted_loss_.empty() ? 0.0 : sorted_loss_[sorted_loss_.size() / 2];
}

void MetricsRules::MedianInsert(double value) {
  sorted_loss_.insert(std::upper_bound(sorted_loss_.begin(), sorted_loss_.end(), value), value);
}

void MetricsRules::MedianErase(double value) {
  // value is drawn from the window, so the lower_bound below cannot miss.
  sorted_loss_.erase(std::lower_bound(sorted_loss_.begin(), sorted_loss_.end(), value));
}

}  // namespace byterobust

#include "src/monitor/monitor.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

#include "src/common/log.h"

namespace byterobust {

namespace {

// Escape hatch for the quiescent-vs-periodic equivalence ctest:
// BYTEROBUST_QUIESCENT_MONITOR=0 pins the periodic reference path process-wide
// so campaign JSON can be byte-compared across the two schedules.
bool QuiescentMonitorEnvEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("BYTEROBUST_QUIESCENT_MONITOR");
    return env == nullptr || std::string(env) != "0";
  }();
  return enabled;
}

}  // namespace

const char* AnomalySourceName(AnomalySource source) {
  switch (source) {
    case AnomalySource::kInspection:
      return "inspection";
    case AnomalySource::kCrashLog:
      return "crash-log";
    case AnomalySource::kMetricNan:
      return "metric-nan";
    case AnomalySource::kMetricSpike:
      return "metric-spike";
    case AnomalySource::kHangSuspect:
      return "hang-suspect";
    case AnomalySource::kMfuDecline:
      return "mfu-decline";
  }
  return "unknown";
}

Monitor::Monitor(const MonitorConfig& config, Simulator* sim, Cluster* cluster, TrainJob* job)
    : config_(config),
      sim_(sim),
      cluster_(cluster),
      job_(job),
      quiescent_(config.quiescent && QuiescentMonitorEnvEnabled()),
      rules_(config.metrics) {
  job_->AddStepObserver([this](const StepRecord& rec) { OnStepRecord(rec); });
  job_->AddStateObserver([this](JobRunState state) { OnJobStateChange(state); });
}

void Monitor::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  anchor_ = sim_->Now();
  if (!quiescent_) {
    for (InspectionCategory cat :
         {InspectionCategory::kNetwork, InspectionCategory::kGpu, InspectionCategory::kHost}) {
      sim_->Schedule(config_.intervals.For(cat), [this, cat] { RunInspectionPass(cat); });
    }
    sim_->Schedule(config_.watchdog_interval, [this] { RunWatchdog(); });
    return;
  }
  // Quiescent: run the first grid tick of every pass (it disarms itself if
  // the cluster is clean), then let wakers drive the schedule.
  ArmAllInspections();
  ArmWatchdog();
}

void Monitor::Stop() { running_ = false; }

void Monitor::OnJobRestart() {
  outstanding_.clear();
  switch_event_counts_.clear();
  rules_.Reset();
  crash_reported_ = false;
  hang_reported_ = false;
  if (quiescent_ && running_) {
    // The flag reset can newly enable the hang/crash predicates, and evicted
    // suspects may have left the serving set: recompute both schedules.
    ArmAllInspections();
    ArmWatchdog();
  }
}

SimTime Monitor::NextTickAfter(SimTime t, SimDuration interval) const {
  std::int64_t k = 1;
  if (t > anchor_) {
    k = (t - anchor_) / interval + 1;
  }
  return anchor_ + k * interval;
}

SimTime Monitor::NextTickAtOrAfter(SimTime t, SimDuration interval) const {
  std::int64_t k = 1;
  if (t > anchor_) {
    k = (t - anchor_ + interval - 1) / interval;
  }
  return anchor_ + k * interval;
}

void Monitor::EnsureMutationWake() {
  if (wake_requested_) {
    return;
  }
  wake_requested_ = true;
  // The waker runs synchronously inside a mutating call, possibly with the
  // mutation half-applied; it only re-arms grid events and reads no health
  // state. Passes that find a clean cluster re-disarm at their next tick.
  cluster_->RequestMutationWake([this] {
    wake_requested_ = false;
    if (running_) {
      ArmAllInspections();
    }
  });
}

void Monitor::ArmAllInspections() {
  for (InspectionCategory cat :
       {InspectionCategory::kNetwork, InspectionCategory::kGpu, InspectionCategory::kHost}) {
    const int idx = CategoryIndex(cat);
    if (inspection_armed_[idx]) {
      continue;
    }
    inspection_armed_[idx] = true;
    // At-or-after: a fault applied exactly on a grid tick is still seen by
    // that tick's pass on the periodic path (the injection event was enqueued
    // long before the pass event, so it dispatches first), so the re-armed
    // pass must fire at the same timestamp.
    sim_->ScheduleAt(NextTickAtOrAfter(sim_->Now(), config_.intervals.For(cat)),
                     [this, cat] { RunInspectionPass(cat); });
  }
}

void Monitor::ArmInspection(InspectionCategory category) {
  if (!quiescent_) {
    sim_->Schedule(config_.intervals.For(category),
                   [this, category] { RunInspectionPass(category); });
    return;
  }
  if (cluster_->SuspectServingMachines().empty()) {
    // Provably nothing to find until the next health mutation: park on the
    // cluster's waker instead of burning one event per interval.
    EnsureMutationWake();
    return;
  }
  inspection_armed_[CategoryIndex(category)] = true;
  sim_->ScheduleAt(NextTickAfter(sim_->Now(), config_.intervals.For(category)),
                   [this, category] { RunInspectionPass(category); });
}

void Monitor::RunInspectionPass(InspectionCategory category) {
  inspection_armed_[CategoryIndex(category)] = false;
  if (!running_) {
    return;
  }
  for (const InspectionFinding& f : RunInspection(category, *cluster_)) {
    // The switch-reachability item needs two consecutive hits (Table 3).
    // Const access: a read must not mark the machine health-dirty.
    if (category == InspectionCategory::kNetwork &&
        !std::as_const(*cluster_).machine(f.machine).host().switch_reachable) {
      if (++switch_event_counts_[f.machine] < config_.switch_event_threshold) {
        continue;
      }
    }
    const auto key = std::make_pair(f.machine, static_cast<int>(f.symptom));
    if (!outstanding_.insert(key).second) {
      continue;  // already reported this run
    }
    AnomalyReport report;
    report.source = AnomalySource::kInspection;
    report.symptom_hint = f.symptom;
    report.machines = {f.machine};
    report.high_confidence = f.high_confidence;
    report.detect_time = sim_->Now();
    report.detail = std::string(InspectionCategoryName(category)) + " inspection hit";
    Emit(std::move(report));
  }
  ArmInspection(category);
}

void Monitor::ArmWatchdog() {
  if (!quiescent_ || !running_) {
    return;
  }
  // Earliest grid tick at which a watchdog predicate could fire given the
  // current job state. kNoPendingEvent means "none without a state change".
  SimTime desired = Simulator::kNoPendingEvent;
  bool crash_armed = false;
  const JobRunState state = job_->state();
  const bool nominally_running = state == JobRunState::kRunning || state == JobRunState::kHung;
  if (state == JobRunState::kCrashed && !crash_reported_) {
    desired = NextTickAtOrAfter(sim_->Now(), config_.watchdog_interval);
    crash_armed = true;
  } else if (nominally_running && !hang_reported_) {
    // The hang predicate needs now - last_progress > threshold, and threshold
    // >= hang_grace always, so no tick at or before last_progress + grace can
    // fire. The armed tick re-evaluates with fresh progress and re-arms.
    const SimTime earliest = std::max(sim_->Now(), job_->last_progress_time() + config_.hang_grace);
    desired = NextTickAfter(earliest, config_.watchdog_interval);
  }
  if (desired == Simulator::kNoPendingEvent) {
    if (watchdog_event_ != kInvalidEventId) {
      sim_->Cancel(watchdog_event_);
      watchdog_event_ = kInvalidEventId;
    }
    return;
  }
  if (watchdog_event_ != kInvalidEventId) {
    if (watchdog_due_ <= desired) {
      return;  // an earlier wake re-evaluates and re-arms; never late
    }
    sim_->Cancel(watchdog_event_);
  }
  watchdog_due_ = desired;
  watchdog_crash_armed_ = crash_armed;
  watchdog_event_ = sim_->ScheduleAt(desired, [this] { RunWatchdog(); });
}

void Monitor::RunWatchdog() {
  // See watchdog_crash_armed_: a hang-armed wake was enqueued before this
  // tick's inspection passes, so letting it see a crash would report ahead of
  // a same-tick pass that stops the job first on the periodic path. It skips
  // the crash branch here; the re-arm below immediately schedules a
  // crash-armed wake at this same timestamp, behind those passes.
  const bool evaluate_crash = !quiescent_ || watchdog_crash_armed_;
  watchdog_event_ = kInvalidEventId;
  watchdog_crash_armed_ = false;
  if (!running_) {
    return;
  }
  // Crash detection through log / exit-code scraping.
  if (evaluate_crash && job_->state() == JobRunState::kCrashed && !crash_reported_) {
    crash_reported_ = true;
    AnomalyReport report;
    report.source = AnomalySource::kCrashLog;
    report.symptom_hint = IncidentSymptom::kCudaError;
    report.detect_time = sim_->Now();
    report.detail = "process exit detected in logs";
    // Detection through stderr scraping lags by about one scrape interval.
    sim_->Schedule(config_.log_scrape_interval, [this, report] { Emit(report); });
  }

  // Hang detection: no progress beyond the hang threshold while nominally
  // running (a hung job still *looks* running; state kHung models the silent
  // stall and is not directly visible, so we use progress timestamps).
  const bool nominally_running =
      job_->state() == JobRunState::kRunning || job_->state() == JobRunState::kHung;
  if (nominally_running && !hang_reported_) {
    const SimDuration threshold =
        std::max(config_.hang_grace, static_cast<SimDuration>(config_.hang_step_factor *
                                                              static_cast<double>(
                                                                  job_->CurrentStepTime())));
    if (sim_->Now() - job_->last_progress_time() > threshold) {
      hang_reported_ = true;
      AnomalyReport report;
      report.source = AnomalySource::kHangSuspect;
      report.symptom_hint = IncidentSymptom::kJobHang;
      report.detect_time = sim_->Now();
      report.detail = "no step progress within hang threshold";
      Emit(std::move(report));
    }
  }
  if (!quiescent_) {
    sim_->Schedule(config_.watchdog_interval, [this] { RunWatchdog(); });
    return;
  }
  ArmWatchdog();
}

void Monitor::OnJobStateChange(JobRunState state) {
  (void)state;
  if (quiescent_ && running_) {
    ArmWatchdog();
  }
}

void Monitor::OnStepRecord(const StepRecord& record) {
  if (!running_) {
    return;
  }
  if (auto report = rules_.OnStep(record)) {
    Emit(std::move(*report));
  }
}

void Monitor::Emit(AnomalyReport report) {
  ++reports_emitted_;
  BR_LOG_INFO("monitor", "anomaly: %s (%s) machines=%zu", AnomalySourceName(report.source),
              SymptomName(report.symptom_hint), report.machines.size());
  if (handler_) {
    handler_(report);
  }
}

}  // namespace byterobust

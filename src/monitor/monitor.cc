#include "src/monitor/monitor.h"

#include <algorithm>
#include <utility>

#include "src/common/log.h"

namespace byterobust {

const char* AnomalySourceName(AnomalySource source) {
  switch (source) {
    case AnomalySource::kInspection:
      return "inspection";
    case AnomalySource::kCrashLog:
      return "crash-log";
    case AnomalySource::kMetricNan:
      return "metric-nan";
    case AnomalySource::kMetricSpike:
      return "metric-spike";
    case AnomalySource::kHangSuspect:
      return "hang-suspect";
    case AnomalySource::kMfuDecline:
      return "mfu-decline";
  }
  return "unknown";
}

Monitor::Monitor(const MonitorConfig& config, Simulator* sim, Cluster* cluster, TrainJob* job)
    : config_(config), sim_(sim), cluster_(cluster), job_(job), rules_(config.metrics) {
  job_->AddStepObserver([this](const StepRecord& rec) { OnStepRecord(rec); });
}

void Monitor::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  for (InspectionCategory cat :
       {InspectionCategory::kNetwork, InspectionCategory::kGpu, InspectionCategory::kHost}) {
    sim_->Schedule(config_.intervals.For(cat), [this, cat] { RunInspectionPass(cat); });
  }
  sim_->Schedule(config_.watchdog_interval, [this] { RunWatchdog(); });
}

void Monitor::Stop() { running_ = false; }

void Monitor::OnJobRestart() {
  outstanding_.clear();
  switch_event_counts_.clear();
  rules_.Reset();
  crash_reported_ = false;
  hang_reported_ = false;
}

void Monitor::RunInspectionPass(InspectionCategory category) {
  if (!running_) {
    return;
  }
  for (const InspectionFinding& f : RunInspection(category, *cluster_)) {
    // The switch-reachability item needs two consecutive hits (Table 3).
    // Const access: a read must not mark the machine health-dirty.
    if (category == InspectionCategory::kNetwork &&
        !std::as_const(*cluster_).machine(f.machine).host().switch_reachable) {
      if (++switch_event_counts_[f.machine] < config_.switch_event_threshold) {
        continue;
      }
    }
    const auto key = std::make_pair(f.machine, static_cast<int>(f.symptom));
    if (!outstanding_.insert(key).second) {
      continue;  // already reported this run
    }
    AnomalyReport report;
    report.source = AnomalySource::kInspection;
    report.symptom_hint = f.symptom;
    report.machines = {f.machine};
    report.high_confidence = f.high_confidence;
    report.detect_time = sim_->Now();
    report.detail = std::string(InspectionCategoryName(category)) + " inspection hit";
    Emit(std::move(report));
  }
  sim_->Schedule(config_.intervals.For(category), [this, category] {
    RunInspectionPass(category);
  });
}

void Monitor::RunWatchdog() {
  if (!running_) {
    return;
  }
  // Crash detection through log / exit-code scraping.
  if (job_->state() == JobRunState::kCrashed && !crash_reported_) {
    crash_reported_ = true;
    AnomalyReport report;
    report.source = AnomalySource::kCrashLog;
    report.symptom_hint = IncidentSymptom::kCudaError;
    report.detect_time = sim_->Now();
    report.detail = "process exit detected in logs";
    // Detection through stderr scraping lags by about one scrape interval.
    sim_->Schedule(config_.log_scrape_interval, [this, report] { Emit(report); });
  }

  // Hang detection: no progress beyond the hang threshold while nominally
  // running (a hung job still *looks* running; state kHung models the silent
  // stall and is not directly visible, so we use progress timestamps).
  const bool nominally_running =
      job_->state() == JobRunState::kRunning || job_->state() == JobRunState::kHung;
  if (nominally_running && !hang_reported_) {
    const SimDuration threshold =
        std::max(config_.hang_grace, static_cast<SimDuration>(config_.hang_step_factor *
                                                              static_cast<double>(
                                                                  job_->CurrentStepTime())));
    if (sim_->Now() - job_->last_progress_time() > threshold) {
      hang_reported_ = true;
      AnomalyReport report;
      report.source = AnomalySource::kHangSuspect;
      report.symptom_hint = IncidentSymptom::kJobHang;
      report.detect_time = sim_->Now();
      report.detail = "no step progress within hang threshold";
      Emit(std::move(report));
    }
  }
  sim_->Schedule(config_.watchdog_interval, [this] { RunWatchdog(); });
}

void Monitor::OnStepRecord(const StepRecord& record) {
  if (!running_) {
    return;
  }
  if (auto report = rules_.OnStep(record)) {
    Emit(std::move(*report));
  }
}

void Monitor::Emit(AnomalyReport report) {
  ++reports_emitted_;
  BR_LOG_INFO("monitor", "anomaly: %s (%s) machines=%zu", AnomalySourceName(report.source),
              SymptomName(report.symptom_hint), report.machines.size());
  if (handler_) {
    handler_(report);
  }
}

}  // namespace byterobust

#include "src/ckpt/backup_strategy.h"

#include <set>

namespace byterobust {

namespace {

// Neighbor-machine fallback (paper: "the system defaults to backup in
// neighboring machines" for single-group parallelism).
Rank NeighborTarget(const Topology& topology, Rank r) {
  const ParallelismConfig& cfg = topology.config();
  const MachineId m = topology.MachineOfRank(r);
  const MachineId neighbor = (m + 1) % topology.num_machines();
  const int local = r % cfg.gpus_per_machine;
  return neighbor * cfg.gpus_per_machine + local;
}

}  // namespace

BackupPlan::BackupPlan(const Topology& topology) {
  const ParallelismConfig& cfg = topology.config();
  cross_group_ = cfg.pp >= 2 && cfg.dp >= 2;
  assignments_.reserve(static_cast<std::size_t>(topology.world_size()));
  // Reused across ranks; vector assignment recycles its capacity.
  MachineSet all_machines(topology.num_machines());
  for (Rank r = 0; r < topology.world_size(); ++r) {
    BackupAssignment a;
    a.owner = r;
    if (cross_group_) {
      // Start from the paper's partner (pp+1, dp+1) and walk pp/dp offsets
      // until the partner's machine lies outside every machine set that an
      // over-eviction of one of the owner's groups would take down. One
      // machine can host several pipeline stages or DP columns (when
      // gpus_per_machine exceeds TP or TP*PP), in which case the naive
      // partner would die with the owner. Tier 1 avoids the machines of all
      // three of the owner's groups; tier 2 relaxes to the PP group only
      // (the kind the analyzer actually over-evicts) for topologies where a
      // DP group spans every machine. The per-group machine footprints come
      // from the topology's precomputed bitmasks, so each rank costs three
      // word-level unions instead of three tree-set builds.
      const RankCoord c = topology.CoordOf(r);
      const MachineSet& pp_machines =
          topology.GroupMachineSet(GroupKind::kPipeline, topology.GroupIndexOf(r, GroupKind::kPipeline));
      all_machines = pp_machines;
      all_machines.UnionWith(
          topology.GroupMachineSet(GroupKind::kData, topology.GroupIndexOf(r, GroupKind::kData)));
      all_machines.UnionWith(
          topology.GroupMachineSet(GroupKind::kTensor, topology.GroupIndexOf(r, GroupKind::kTensor)));
      Rank chosen = -1;
      const MachineSet* const tiers[] = {&all_machines, &pp_machines};
      for (const MachineSet* forbidden : tiers) {
        if (forbidden->Count() == topology.num_machines()) {
          continue;  // every candidate is forbidden; no point scanning pp x dp
        }
        for (int j = 1; j < cfg.pp && chosen < 0; ++j) {
          for (int k = 1; k < cfg.dp && chosen < 0; ++k) {
            RankCoord pc = c;
            pc.pp = (c.pp + j) % cfg.pp;
            pc.dp = (c.dp + k) % cfg.dp;
            const Rank candidate = topology.RankOf(pc);
            if (!forbidden->Contains(topology.MachineOfRank(candidate))) {
              chosen = candidate;
            }
          }
        }
        if (chosen >= 0) {
          break;
        }
      }
      a.target = chosen >= 0 ? chosen : NeighborTarget(topology, r);
    } else {
      a.target = NeighborTarget(topology, r);
    }
    assignments_.push_back(a);
  }
}

bool BackupPlan::SatisfiesCrossGroupInvariant(const Topology& topology) const {
  if (!cross_group_) {
    return false;
  }
  for (const BackupAssignment& a : assignments_) {
    if (a.owner == a.target || topology.SharesAnyGroup(a.owner, a.target)) {
      return false;
    }
  }
  return true;
}

bool BackupPlan::SurvivesEviction(const Topology& topology,
                                  const std::vector<MachineId>& machines) const {
  const std::set<MachineId> evicted(machines.begin(), machines.end());
  for (const BackupAssignment& a : assignments_) {
    const bool primary_lost = evicted.count(topology.MachineOfRank(a.owner)) > 0;
    const bool backup_lost = evicted.count(topology.MachineOfRank(a.target)) > 0;
    if (primary_lost && backup_lost) {
      return false;
    }
  }
  return true;
}

bool BackupPlan::SurvivesGroupEviction(const Topology& topology,
                                       const ParallelGroup& group) const {
  return SurvivesEviction(topology, topology.MachinesOfGroup(group));
}

std::shared_ptr<const BackupPlan> SharedBackupPlan(const Topology& topology) {
  return FrozenByConfig<BackupPlan>(
      topology.config(), [&] { return std::make_shared<const BackupPlan>(topology); });
}

}  // namespace byterobust

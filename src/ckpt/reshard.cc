#include "src/ckpt/reshard.h"

#include <algorithm>
#include <stdexcept>

namespace byterobust {

namespace {

// Shard i of n over [0, total): boundaries via exact integer arithmetic so
// shards tile the space with no gaps or overlaps.
ByteInterval ShardOf(std::int64_t total, std::int64_t i, std::int64_t n) {
  return {total * i / n, total * (i + 1) / n};
}

// Sources overlapping `want`, where the old space is tiled by `n` shards and
// `owner_of(shard_index)` names the old rank holding that shard.
template <typename OwnerFn>
std::vector<ShardSource> SourcesFor(const ByteInterval& want, std::int64_t total,
                                    std::int64_t n, OwnerFn owner_of) {
  std::vector<ShardSource> sources;
  if (want.size() <= 0) {
    return sources;
  }
  // First old shard that can overlap: binary search over shard boundaries.
  std::int64_t lo_shard = want.lo * n / total;
  while (lo_shard > 0 && ShardOf(total, lo_shard, n).lo > want.lo) {
    --lo_shard;
  }
  for (std::int64_t s = lo_shard; s < n; ++s) {
    const ByteInterval shard = ShardOf(total, s, n);
    const std::int64_t lo = std::max(shard.lo, want.lo);
    const std::int64_t hi = std::min(shard.hi, want.hi);
    if (lo >= want.hi) {
      break;
    }
    if (hi > lo) {
      sources.push_back({owner_of(s), {lo, hi}});
    }
  }
  return sources;
}

}  // namespace

ReshardPlanner::ReshardPlanner(const ParallelismConfig& old_config,
                               const ParallelismConfig& new_config, std::int64_t model_bytes,
                               std::int64_t optimizer_bytes)
    : old_(old_config), new_(new_config), model_bytes_(model_bytes),
      optimizer_bytes_(optimizer_bytes) {
  if (!old_.Valid() || !new_.Valid()) {
    throw std::invalid_argument("invalid parallelism config for resharding");
  }
  if (model_bytes < 0 || optimizer_bytes < 0) {
    throw std::invalid_argument("negative state size");
  }
}

ByteInterval ReshardPlanner::ModelShard(const ParallelismConfig& config, Rank rank,
                                        std::int64_t model_bytes) {
  const Topology topo(config);
  const RankCoord c = topo.CoordOf(rank);
  const std::int64_t shards = static_cast<std::int64_t>(config.tp) * config.pp;
  const std::int64_t index = c.tp + static_cast<std::int64_t>(config.tp) * c.pp;
  return ShardOf(model_bytes, index, shards);
}

ByteInterval ReshardPlanner::OptimizerShard(const ParallelismConfig& config, Rank rank,
                                            std::int64_t optimizer_bytes) {
  return ShardOf(optimizer_bytes, rank, config.world_size());
}

std::vector<ShardSource> ReshardPlanner::ModelSourcesFor(Rank new_rank) const {
  const ByteInterval want = ModelShard(new_, new_rank, model_bytes_);
  const Topology old_topo(old_);
  const std::int64_t n = static_cast<std::int64_t>(old_.tp) * old_.pp;
  return SourcesFor(want, model_bytes_, n, [this, &old_topo](std::int64_t shard) {
    // dp = 0 replica of the old grid holds shard (tp, pp) = (shard % tp,
    // shard / tp).
    RankCoord c;
    c.tp = static_cast<int>(shard % old_.tp);
    c.pp = static_cast<int>(shard / old_.tp);
    c.dp = 0;
    return old_topo.RankOf(c);
  });
}

std::vector<ShardSource> ReshardPlanner::OptimizerSourcesFor(Rank new_rank) const {
  const ByteInterval want = OptimizerShard(new_, new_rank, optimizer_bytes_);
  return SourcesFor(want, optimizer_bytes_, old_.world_size(),
                    [](std::int64_t shard) { return static_cast<Rank>(shard); });
}

ReshardStats ReshardPlanner::Stats() const {
  ReshardStats stats;
  for (Rank r = 0; r < new_.world_size(); ++r) {
    std::size_t fan_in = 0;
    for (const ShardSource& s : ModelSourcesFor(r)) {
      stats.model_bytes_moved += s.range.size();
      ++fan_in;
    }
    for (const ShardSource& s : OptimizerSourcesFor(r)) {
      stats.optimizer_bytes_moved += s.range.size();
      ++fan_in;
    }
    stats.max_fan_in = std::max(stats.max_fan_in, static_cast<double>(fan_in));
  }
  return stats;
}

}  // namespace byterobust

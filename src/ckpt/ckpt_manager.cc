#include "src/ckpt/ckpt_manager.h"

#include <algorithm>

#include "src/ckpt/size_model.h"

namespace byterobust {

namespace {
constexpr double kGb = 1e9;
}

CheckpointManager::CheckpointManager(const CkptManagerConfig& config, Simulator* sim,
                                     TrainJob* job)
    : config_(config), sim_(sim), job_(job), backup_plan_(SharedBackupPlan(job->topology())) {
  save_latency_ = SaveLatency();  // pure function of the (fixed) job config
  job_->AddStepObserver([this](const StepRecord& rec) { OnStep(rec); });
}

SimDuration CheckpointManager::SaveLatency() const {
  const double bytes = CheckpointSizeModel::TotalBytesPerRank(job_->config());
  const double d2h_s = bytes / (config_.bandwidths.pcie_gbps * kGb);
  const double ser_s = bytes / (config_.serialize_async_gbps * kGb);
  // D2H, serialization and backup send are pipelined across the dual buffer
  // (Sec. 7), so durability lags by roughly the slower of the two stages plus
  // the D2H itself rather than their strict sum.
  return Seconds(d2h_s + std::max(ser_s, d2h_s));
}

void CheckpointManager::OnStep(const StepRecord& record) {
  if (config_.save_every_steps <= 0 || record.step % config_.save_every_steps != 0) {
    return;
  }
  DrainCompletedSaves();
  // Dual buffer: with two saves already in flight the new one replaces the
  // pending slot only after the oldest completes. Saves complete in FIFO
  // order with fixed latency, so simply cap the queue.
  if (in_flight_.size() >= 2) {
    return;  // skip this step's save; the next one will catch up
  }
  ++saves_started_;
  in_flight_.push_back({record.step, sim_->Now() + save_latency_});
}

void CheckpointManager::DrainCompletedSaves() const {
  const SimTime now = sim_->Now();
  while (!in_flight_.empty() && in_flight_.front().complete_time <= now) {
    durable_step_ = std::max(durable_step_, in_flight_.front().step);
    ++saves_completed_;
    in_flight_.pop_front();
  }
}

SimDuration CheckpointManager::LoadTime(bool from_remote) const {
  if (from_remote) {
    const double job_bytes = CheckpointSizeModel::TotalJobBytes(job_->config());
    const double s = job_bytes / (config_.remote_load_aggregate_gbps * kGb);
    return config_.remote_load_overhead + Seconds(s);
  }
  const double rank_bytes = CheckpointSizeModel::TotalBytesPerRank(job_->config());
  const double s = rank_bytes / (config_.local_load_gbps_per_rank * kGb);
  return config_.local_load_overhead + Seconds(s);
}

bool CheckpointManager::CanRestoreAfterEviction(const std::vector<MachineId>& machines) const {
  return backup_plan_->SurvivesEviction(job_->topology(), machines);
}

}  // namespace byterobust

#include "src/ckpt/size_model.h"

namespace byterobust {

double CheckpointSizeModel::ModelBytesPerRank(const JobConfig& config) {
  const double params = config.model_params_b * 1e9;
  const double model_shards = static_cast<double>(config.parallelism.tp * config.parallelism.pp);
  return params * kWeightBytesPerParam / model_shards;
}

double CheckpointSizeModel::OptimizerBytesPerRank(const JobConfig& config) {
  const double params = config.model_params_b * 1e9;
  const double shards = static_cast<double>(config.parallelism.world_size());
  return params * kOptimizerBytesPerParam / shards;
}

double CheckpointSizeModel::TotalBytesPerRank(const JobConfig& config) {
  return ModelBytesPerRank(config) + OptimizerBytesPerRank(config);
}

double CheckpointSizeModel::TotalJobBytes(const JobConfig& config) {
  const double params = config.model_params_b * 1e9;
  return params * (kWeightBytesPerParam + kOptimizerBytesPerParam);
}

}  // namespace byterobust

// Checkpointing cost model: per-step blocking time and relative MFU for the
// three approaches compared in Table 8.
//
//  - Megatron save: synchronous serialize-and-write of the full per-rank
//    shard each iteration; training blocks for the whole I/O.
//  - Memory save (Gemini-style): in-memory checkpointing; training blocks
//    while the snapshot is copied device-to-host on the training stream.
//  - ByteRobust save: dual-buffered D2H on a dedicated CUDA stream with
//    serialization and backup sends pipelined (Fig. 8); the optimizer step
//    only waits for its own save's completion flag.

#ifndef SRC_CKPT_COST_MODEL_H_
#define SRC_CKPT_COST_MODEL_H_

#include "src/common/sim_time.h"
#include "src/training/job_config.h"

namespace byterobust {

enum class CkptApproach {
  kMegatronSave,
  kMemorySave,
  kByteRobustSave,
};

const char* CkptApproachName(CkptApproach approach);

struct CkptBandwidths {
  // Synchronous serialize + write path used by Megatron save, in GB/s.
  double serialize_gbps = 0.40;
  // Blocking D2H + host copy path used by Memory save, in GB/s.
  double memory_save_gbps = 1.50;
  // Dedicated-stream D2H bandwidth (PCIe; the L20 testbed has 30 GB/s).
  double pcie_gbps = 30.0;
  // Interleaved P2P backup bandwidth per rank (runs inside idle comm cycles).
  double backup_net_gbps = 12.0;
};

struct CkptCost {
  SimDuration blocking_per_step = 0;  // checkpoint stall added to each step
  double relative_mfu = 1.0;          // MFU ratio vs training w/o checkpointing
  // Hidden (non-blocking) work per step, for sanity checks: it must fit
  // within the step for the overlap story to hold.
  SimDuration hidden_d2h = 0;
  SimDuration hidden_backup_send = 0;
};

class CheckpointCostModel {
 public:
  explicit CheckpointCostModel(const CkptBandwidths& bw = {}) : bw_(bw) {}

  // Cost of checkpointing every iteration with the given approach, for a job
  // whose healthy step time is `step_time`.
  CkptCost Evaluate(CkptApproach approach, const JobConfig& config, SimDuration step_time) const;

  const CkptBandwidths& bandwidths() const { return bw_; }

 private:
  CkptBandwidths bw_;
};

}  // namespace byterobust

#endif  // SRC_CKPT_COST_MODEL_H_

// CKPT manager (data plane): high-frequency asynchronous checkpointing with a
// dual CPU-tensor buffer and cross-parallel-group backups (paper Secs. 6.3
// and 7). Saves run every step; failure recovery restores the latest
// checkpoint whose D2H copy *and* serialization both completed.

#ifndef SRC_CKPT_CKPT_MANAGER_H_
#define SRC_CKPT_CKPT_MANAGER_H_

#include <cstdint>
#include <deque>
#include <memory>

#include "src/ckpt/backup_strategy.h"
#include "src/ckpt/cost_model.h"
#include "src/sim/simulator.h"
#include "src/training/train_job.h"

namespace byterobust {

struct CkptManagerConfig {
  CkptApproach approach = CkptApproach::kByteRobustSave;
  CkptBandwidths bandwidths;
  int save_every_steps = 1;

  // Host-side serialization throughput of the async pipeline, GB/s.
  double serialize_async_gbps = 2.0;

  // Restore-path parameters. Local restores read CPU-memory / local-SSD
  // copies (evicted slots fetch their shards from cross-group backup peers);
  // the remote baseline pulls the whole checkpoint over the low-bandwidth
  // frontend network to a remote file system.
  double local_load_gbps_per_rank = 10.0;
  double remote_load_aggregate_gbps = 8.0;
  SimDuration local_load_overhead = Seconds(5);
  SimDuration remote_load_overhead = Seconds(120);
};

class CheckpointManager {
 public:
  CheckpointManager(const CkptManagerConfig& config, Simulator* sim, TrainJob* job);

  // The step to resume from after a failure: one past the newest durable
  // completed step (0 when nothing durable exists yet).
  std::int64_t RestorableResumeStep() const {
    DrainCompletedSaves();
    return durable_step_ + 1 > 0 ? durable_step_ + 1 : 0;
  }
  std::int64_t durable_step() const {
    DrainCompletedSaves();
    return durable_step_;
  }

  // Time to load the restorable checkpoint into a restarted job.
  SimDuration LoadTime(bool from_remote) const;

  const BackupPlan& backup_plan() const { return *backup_plan_; }

  // True if every rank's shard survives evicting `machines` (primary or
  // cross-group backup still on a serving machine).
  bool CanRestoreAfterEviction(const std::vector<MachineId>& machines) const;

  // Per-save latency until durability (D2H + serialization pipeline).
  SimDuration SaveLatency() const;

  std::int64_t saves_started() const { return saves_started_; }
  std::int64_t saves_completed() const {
    DrainCompletedSaves();
    return saves_completed_;
  }
  int in_flight() const {
    DrainCompletedSaves();
    return static_cast<int>(in_flight_.size());
  }

  const CkptManagerConfig& config() const { return config_; }

 private:
  struct PendingSave {
    std::int64_t step;
    SimTime complete_time;
  };

  void OnStep(const StepRecord& record);
  // Saves become durable in FIFO order at a deterministic latency, so instead
  // of scheduling one simulator event per save (which would cap the batched
  // step loop at the save latency and cost O(steps) event traffic), completed
  // saves are folded into durable_step_ lazily at the current simulated time.
  void DrainCompletedSaves() const;

  CkptManagerConfig config_;
  Simulator* sim_;
  TrainJob* job_;
  // Frozen campaign template: shared, immutable per parallelism config.
  std::shared_ptr<const BackupPlan> backup_plan_;
  SimDuration save_latency_ = 0;
  mutable std::int64_t durable_step_ = -1;
  std::int64_t saves_started_ = 0;
  mutable std::int64_t saves_completed_ = 0;
  // Dual buffer: at most two saves in flight; older saves must finish first.
  mutable std::deque<PendingSave> in_flight_;
};

}  // namespace byterobust

#endif  // SRC_CKPT_CKPT_MANAGER_H_

// Load-time checkpoint resharding (ByteCheckpoint, cited as the paper's
// checkpoint substrate [80]): checkpoints are stored in a parallelism-
// agnostic representation so a job restarted with a different TP/PP/DP
// configuration (e.g. the long-context stage expands machines, Sec. 2.1) can
// load them efficiently. The planner computes, for every rank of the new
// topology, which byte ranges of which old ranks' shards it must read.

#ifndef SRC_CKPT_RESHARD_H_
#define SRC_CKPT_RESHARD_H_

#include <cstdint>
#include <vector>

#include "src/topology/parallelism.h"

namespace byterobust {

// Half-open byte interval [lo, hi).
struct ByteInterval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  std::int64_t size() const { return hi - lo; }
  bool operator==(const ByteInterval&) const = default;
};

// One read a new rank must issue: bytes [lo, hi) of `old_rank`'s shard space.
struct ShardSource {
  Rank old_rank = 0;
  ByteInterval range;
};

struct ReshardStats {
  std::int64_t model_bytes_moved = 0;      // total model bytes read
  std::int64_t optimizer_bytes_moved = 0;  // total optimizer bytes read
  double max_fan_in = 0;                   // worst-case sources per new rank
};

class ReshardPlanner {
 public:
  // `model_bytes` / `optimizer_bytes` are the whole-job state sizes.
  ReshardPlanner(const ParallelismConfig& old_config, const ParallelismConfig& new_config,
                 std::int64_t model_bytes, std::int64_t optimizer_bytes);

  // Model weights are sharded over the TP x PP grid (every DP replica holds
  // the same interval); this returns the interval owned by the given rank.
  static ByteInterval ModelShard(const ParallelismConfig& config, Rank rank,
                                 std::int64_t model_bytes);

  // Optimizer state is ZeRO-1 sharded over the whole world.
  static ByteInterval OptimizerShard(const ParallelismConfig& config, Rank rank,
                                     std::int64_t optimizer_bytes);

  // Sources a new rank reads to assemble its model / optimizer shard. Model
  // sources are resolved against the dp=0 replica of the old topology.
  std::vector<ShardSource> ModelSourcesFor(Rank new_rank) const;
  std::vector<ShardSource> OptimizerSourcesFor(Rank new_rank) const;

  // Aggregate plan statistics across all new ranks.
  ReshardStats Stats() const;

  const ParallelismConfig& old_config() const { return old_; }
  const ParallelismConfig& new_config() const { return new_; }

 private:
  ParallelismConfig old_;
  ParallelismConfig new_;
  std::int64_t model_bytes_;
  std::int64_t optimizer_bytes_;
};

}  // namespace byterobust

#endif  // SRC_CKPT_RESHARD_H_

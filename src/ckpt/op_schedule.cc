#include "src/ckpt/op_schedule.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace byterobust {

namespace {
constexpr double kGb = 1e9;

SimDuration TransferTime(double bytes, double gbps) {
  return static_cast<SimDuration>(bytes / (gbps * kGb) * kSecond);
}
}  // namespace

const char* OpResourceName(OpResource resource) {
  switch (resource) {
    case OpResource::kCompute:
      return "compute";
    case OpResource::kTrainComm:
      return "train-comm";
    case OpResource::kCkptStream:
      return "ckpt-stream";
    case OpResource::kHost:
      return "host";
  }
  return "unknown";
}

bool OpSchedule::ResourceFeasible() const {
  std::map<OpResource, std::vector<std::pair<SimTime, SimTime>>> lanes;
  for (const ScheduledOp& op : ops) {
    lanes[op.resource].push_back({op.start, op.end});
  }
  for (auto& [resource, spans] : lanes) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      if (spans[i].first < spans[i - 1].second) {
        return false;
      }
    }
  }
  return true;
}

std::string OpSchedule::Render() const {
  std::ostringstream out;
  std::vector<ScheduledOp> sorted = ops;
  std::sort(sorted.begin(), sorted.end(), [](const ScheduledOp& a, const ScheduledOp& b) {
    if (a.start != b.start) {
      return a.start < b.start;
    }
    return a.name < b.name;
  });
  for (const ScheduledOp& op : sorted) {
    char line[160];
    std::snprintf(line, sizeof(line), "  [%8.3fs - %8.3fs] %-11s %s\n", ToSeconds(op.start),
                  ToSeconds(op.end), OpResourceName(op.resource), op.name.c_str());
    out << line;
  }
  return out.str();
}

OpSchedule BuildCheckpointSchedule(const OpScheduleInputs& in, bool interleave_backup) {
  OpSchedule schedule;
  const SimTime f_end = in.forward;
  const SimTime b_end = in.forward + in.backward;

  // -- training ops -----------------------------------------------------------
  schedule.ops.push_back({"forward", OpResource::kCompute, 0, f_end});
  schedule.ops.push_back({"backward", OpResource::kCompute, f_end, b_end});
  // Training collectives occupy the leading fraction of forward (parameter
  // all-gather) and the trailing fraction of backward (gradient
  // reduce-scatter), leaving idle comm windows elsewhere (Fig. 8).
  const SimTime fwd_comm_end =
      static_cast<SimTime>(in.comm_busy_fraction * static_cast<double>(in.forward));
  const SimTime bwd_comm_start =
      b_end - static_cast<SimTime>(in.comm_busy_fraction * static_cast<double>(in.backward));
  schedule.ops.push_back({"model all-gather", OpResource::kTrainComm, 0, fwd_comm_end});
  schedule.ops.push_back({"gradient reduce-scatter", OpResource::kTrainComm, bwd_comm_start,
                          b_end});

  // -- checkpoint D2H on the dedicated stream ---------------------------------
  const SimDuration d2h_model = TransferTime(in.model_bytes, in.pcie_gbps);
  const SimDuration d2h_opt = TransferTime(in.optimizer_bytes, in.pcie_gbps);
  schedule.ops.push_back({"D2H model shard", OpResource::kCkptStream, 0, d2h_model});
  schedule.ops.push_back(
      {"D2H optimizer shard", OpResource::kCkptStream, d2h_model, d2h_model + d2h_opt});
  const SimTime d2h_done = d2h_model + d2h_opt;

  // -- host serialization pipelined behind D2H --------------------------------
  const SimDuration ser_model = TransferTime(in.model_bytes, in.serialize_gbps);
  const SimDuration ser_opt = TransferTime(in.optimizer_bytes, in.serialize_gbps);
  schedule.ops.push_back(
      {"serialize model shard", OpResource::kHost, d2h_model, d2h_model + ser_model});
  const SimTime ser_opt_start = std::max(d2h_done, d2h_model + ser_model);
  schedule.ops.push_back(
      {"serialize optimizer shard", OpResource::kHost, ser_opt_start, ser_opt_start + ser_opt});

  // -- backup shard exchange ---------------------------------------------------
  const double backup_bytes = in.model_bytes + in.optimizer_bytes;
  SimTime comm_tail = b_end;  // when the training channel finally goes idle
  if (interleave_backup) {
    // Chunked P2P sends slotted into the idle comm windows: (fwd_comm_end,
    // f_end) and (f_end, bwd_comm_start), spilling past backward if needed.
    const int chunks = std::max(in.backup_chunks, 1);
    const SimDuration chunk_time = TransferTime(backup_bytes / chunks, in.backup_net_gbps);
    SimTime cursor = fwd_comm_end;
    for (int i = 0; i < chunks; ++i) {
      // Skip over the busy reduce-scatter burst.
      if (cursor < bwd_comm_start && cursor + chunk_time > bwd_comm_start) {
        cursor = b_end;
      }
      char name[48];
      std::snprintf(name, sizeof(name), "backup send chunk %d/%d", i + 1, chunks);
      schedule.ops.push_back({name, OpResource::kTrainComm, cursor, cursor + chunk_time});
      cursor += chunk_time;
      comm_tail = std::max(comm_tail, cursor);
    }
  } else {
    // Ablation baseline: one bulk transfer after backward, monopolizing the
    // training channel and delaying the next step's all-gather.
    const SimDuration bulk = TransferTime(backup_bytes, in.backup_net_gbps);
    schedule.ops.push_back({"backup send (bulk)", OpResource::kTrainComm, b_end, b_end + bulk});
    comm_tail = b_end + bulk;
  }

  // -- optimizer step gated on the rank's own save ------------------------------
  const SimTime opt_start = std::max(b_end, d2h_done);
  schedule.ops.push_back({"optimizer step", OpResource::kCompute, opt_start,
                          opt_start + in.optimizer});

  schedule.step_time_without_ckpt = in.forward + in.backward + in.optimizer;
  // The step completes when compute is done and the training channel is free
  // for the next step's parameter all-gather.
  schedule.step_time_with_ckpt = std::max(opt_start + in.optimizer, comm_tail);
  return schedule;
}

}  // namespace byterobust

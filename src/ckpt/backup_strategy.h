// Cross-parallel-group backup strategy (paper Sec. 6.3, Fig. 9).
//
// Each rank backs up its sharded optimizer/model states on a peer outside all
// of its 3D parallel groups, so that over-evicting an entire parallel group
// (Sec. 5) never destroys both the primary and the backup copy of any shard.
// Degenerate configs (single parallel group, e.g. pure ZeRO) fall back to
// neighbor-machine backup.

#ifndef SRC_CKPT_BACKUP_STRATEGY_H_
#define SRC_CKPT_BACKUP_STRATEGY_H_

#include <memory>
#include <vector>

#include "src/topology/parallelism.h"

namespace byterobust {

struct BackupAssignment {
  Rank owner = 0;   // the rank whose shard is being protected
  Rank target = 0;  // the rank holding the backup copy
};

class BackupPlan {
 public:
  explicit BackupPlan(const Topology& topology);

  // Backup target for `rank`.
  Rank TargetOf(Rank rank) const { return assignments_[static_cast<std::size_t>(rank)].target; }

  const std::vector<BackupAssignment>& assignments() const { return assignments_; }

  // True when the plan used the cross-group rule (vs the neighbor fallback).
  bool cross_group() const { return cross_group_; }

  // Verifies the Sec. 6.3 invariant: no rank's backup target shares any of
  // its TP/PP/DP groups. Always false for degenerate (fallback) plans.
  bool SatisfiesCrossGroupInvariant(const Topology& topology) const;

  // Checks shard availability after evicting `machines`: every rank's state
  // must survive on at least one non-evicted machine (its own, or its backup
  // target's). This is the property the over-eviction-aware design buys.
  bool SurvivesEviction(const Topology& topology, const std::vector<MachineId>& machines) const;

  // Convenience: survivability under over-eviction of one whole group.
  bool SurvivesGroupEviction(const Topology& topology, const ParallelGroup& group) const;

 private:
  std::vector<BackupAssignment> assignments_;
  bool cross_group_ = false;
};

// Frozen-template cache companion to SharedTopology: the plan is a pure
// function of the parallelism config, so campaign seeds share one immutable
// instance per config instead of rebuilding it per CheckpointManager.
std::shared_ptr<const BackupPlan> SharedBackupPlan(const Topology& topology);

}  // namespace byterobust

#endif  // SRC_CKPT_BACKUP_STRATEGY_H_

// Checkpoint size model for mixed-precision 3D-parallel training with ZeRO-1.
//
// Per paper Sec. 2.1: Adam optimizer state consumes 6x the model weights'
// memory; with bf16 weights (2 B/param) that is 12 B/param of fp32 master
// weights + moments, sharded across the DP group under ZeRO-1. Model weights
// are sharded over TP x PP only.

#ifndef SRC_CKPT_SIZE_MODEL_H_
#define SRC_CKPT_SIZE_MODEL_H_

#include "src/training/job_config.h"

namespace byterobust {

inline constexpr double kWeightBytesPerParam = 2.0;     // bf16
inline constexpr double kOptimizerBytesPerParam = 12.0;  // fp32 master + Adam moments

struct CheckpointSizeModel {
  // Model-weight shard held by one rank (TP x PP sharding).
  static double ModelBytesPerRank(const JobConfig& config);

  // Optimizer shard held by one rank (ZeRO-1: additionally sharded over DP).
  static double OptimizerBytesPerRank(const JobConfig& config);

  // Full per-rank checkpoint payload.
  static double TotalBytesPerRank(const JobConfig& config);

  // Whole-job checkpoint size (model stored once per DP replica set,
  // optimizer stored once in total).
  static double TotalJobBytes(const JobConfig& config);
};

}  // namespace byterobust

#endif  // SRC_CKPT_SIZE_MODEL_H_

#include "src/ckpt/cost_model.h"

#include <algorithm>

#include "src/ckpt/size_model.h"

namespace byterobust {

namespace {
constexpr double kGb = 1e9;

SimDuration TransferTime(double bytes, double gbps) {
  return static_cast<SimDuration>(bytes / (gbps * kGb) * kSecond);
}
}  // namespace

const char* CkptApproachName(CkptApproach approach) {
  switch (approach) {
    case CkptApproach::kMegatronSave:
      return "Megatron save";
    case CkptApproach::kMemorySave:
      return "Memory save";
    case CkptApproach::kByteRobustSave:
      return "ByteRobust save";
  }
  return "unknown";
}

CkptCost CheckpointCostModel::Evaluate(CkptApproach approach, const JobConfig& config,
                                       SimDuration step_time) const {
  const double model_bytes = CheckpointSizeModel::ModelBytesPerRank(config);
  const double opt_bytes = CheckpointSizeModel::OptimizerBytesPerRank(config);
  const double total_bytes = model_bytes + opt_bytes;

  CkptCost cost;
  switch (approach) {
    case CkptApproach::kMegatronSave:
      // Fully synchronous serialize + write of the whole per-rank shard.
      cost.blocking_per_step = TransferTime(total_bytes, bw_.serialize_gbps);
      break;
    case CkptApproach::kMemorySave:
      // Snapshot into CPU memory on the training stream: D2H plus host copy
      // block the step; only the subsequent serialization is asynchronous.
      cost.blocking_per_step = TransferTime(total_bytes, bw_.memory_save_gbps);
      break;
    case CkptApproach::kByteRobustSave: {
      // Dual-buffer D2H on an isolated stream; serialization and backup
      // sends pipeline behind it (Sec. 7). The optimizer step waits only on
      // the completion flag of its own save — a fixed sync check plus the
      // residual tail of the optimizer-shard copy that cannot hide inside
      // the optimizer step itself.
      const SimDuration own_save_tail = TransferTime(opt_bytes, bw_.pcie_gbps);
      cost.blocking_per_step = Milliseconds(5) + own_save_tail;
      cost.hidden_d2h = TransferTime(total_bytes, bw_.pcie_gbps);
      // Backup shards are exchanged with the cross-group peer during forward/
      // backward idle communication cycles (Fig. 8).
      cost.hidden_backup_send = TransferTime(total_bytes, bw_.backup_net_gbps);
      break;
    }
  }
  const double step = static_cast<double>(step_time);
  const double blocked = static_cast<double>(cost.blocking_per_step);
  cost.relative_mfu = step / (step + blocked);
  return cost;
}

}  // namespace byterobust

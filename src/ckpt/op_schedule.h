// Checkpoint operation scheduling (paper Fig. 8): builds the explicit
// per-step timeline of training and checkpointing operations under
// ZeRO-style parallelism.
//
// Training occupies the compute stream (forward, backward, optimizer step)
// and the training-communication channel (gradient reduce-scatter, model
// all-gather). Checkpointing work rides elsewhere: D2H copies run on a
// dedicated CUDA stream; backup shard exchanges are chunked and interleaved
// into the *idle* windows of the communication channel during forward and
// backward; serialization follows each D2H on the host. The optimizer step
// gates on the completion of the rank's own save (data-integrity rule).

#ifndef SRC_CKPT_OP_SCHEDULE_H_
#define SRC_CKPT_OP_SCHEDULE_H_

#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/training/job_config.h"

namespace byterobust {

enum class OpResource {
  kCompute,    // GPU compute stream
  kTrainComm,  // NCCL channel used by training collectives
  kCkptStream, // dedicated checkpointing CUDA stream (D2H)
  kHost,       // CPU-side serialization
};

const char* OpResourceName(OpResource resource);

struct ScheduledOp {
  std::string name;
  OpResource resource;
  SimTime start = 0;
  SimTime end = 0;

  SimDuration duration() const { return end - start; }
};

struct OpScheduleInputs {
  // Training phase durations for one step.
  SimDuration forward = Seconds(1.4);
  SimDuration backward = Seconds(2.6);
  SimDuration optimizer = Seconds(0.3);
  // Training communication bursts inside forward/backward (fraction of the
  // phase the NCCL channel is busy with training traffic).
  double comm_busy_fraction = 0.55;
  // Checkpoint payloads per rank, bytes.
  double model_bytes = 2.2e9;
  double optimizer_bytes = 0.4e9;
  // Bandwidths, GB/s.
  double pcie_gbps = 30.0;
  double backup_net_gbps = 12.0;
  double serialize_gbps = 2.0;
  // Backup exchange is split into this many chunks interleaved with training
  // communication (Sec. 6.3 "partition the states into small chunks").
  int backup_chunks = 8;
};

struct OpSchedule {
  std::vector<ScheduledOp> ops;
  SimDuration step_time_without_ckpt = 0;
  SimDuration step_time_with_ckpt = 0;

  // The checkpoint stall this schedule adds to the step.
  SimDuration BlockingTime() const { return step_time_with_ckpt - step_time_without_ckpt; }

  // True when no two ops on the same resource overlap in time.
  bool ResourceFeasible() const;

  std::string Render() const;  // ASCII timeline for docs/examples
};

// Builds the Fig. 8 schedule. With `interleave_backup=false` the backup
// exchange runs as one bulk transfer after backward on the training channel
// (the ablation baseline), delaying the optimizer step.
OpSchedule BuildCheckpointSchedule(const OpScheduleInputs& inputs, bool interleave_backup = true);

}  // namespace byterobust

#endif  // SRC_CKPT_OP_SCHEDULE_H_

#include "src/obs/trace.h"

#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/sync.h"
#include "src/common/thread_annotations.h"
#include "src/harness/wallclock.h"
#include "src/obs/metrics.h"

namespace byterobust {
namespace obs {

namespace trace_internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace trace_internal

namespace {

// Small per-thread track ids (1, 2, 3, ...) assigned on first event, so
// traces are compact and stable run-to-run in thread-creation order rather
// than exposing opaque pthread ids.
std::atomic<int> g_next_tid{1};
thread_local int t_trace_tid = 0;

int ThisThreadTraceTid() {
  if (t_trace_tid == 0) {
    t_trace_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  return t_trace_tid;
}

// All writer state behind one mutex: events are single fwrite calls of whole
// lines, so a reader of a torn (SIGKILLed) file sees at most one partial
// final line.
class TraceWriter {
 public:
  bool Open(const std::string& path, std::string* error) {
    CloseLocked_Outer();
    const MutexLock lock(&mu_);
    file_ = std::fopen(path.c_str(), "w");
    if (file_ == nullptr) {
      if (error != nullptr) {
        *error = "cannot open trace file '" + path + "': " +
                 std::strerror(errno);
      }
      return false;
    }
    // Line-buffered: every event line reaches the OS as it is written, so a
    // hard kill tears at a line boundary (plus at most one partial line).
    std::setvbuf(file_, nullptr, _IOLBF, 1 << 16);
    start_wall_s_ = WallSeconds();
    events_ = 0;
    std::fputs("[\n", file_);
    trace_internal::g_trace_enabled.store(true, std::memory_order_relaxed);
    EmitLocked("M", "trace_start", "meta", start_wall_s_, -1.0,
               /*has_arg=*/false, 0);
    return true;
  }

  void Close() {
    // Counter footer: final metrics registry values as chrome "C" events, so
    // a trace carries its run's harness/campaign counters. Snapshot before
    // taking mu_ (the registry has its own lock; no nesting).
    const MetricsSnapshot snap = GlobalMetrics().Snap();
    const double now = WallSeconds();
    {
      const MutexLock lock(&mu_);
      if (file_ == nullptr) {
        return;
      }
      trace_internal::g_trace_enabled.store(false, std::memory_order_relaxed);
      for (const auto& [name, value] : snap.counters) {
        std::fprintf(file_,
                     "{\"ph\":\"C\",\"ts\":%" PRIu64
                     ",\"pid\":%d,\"tid\":0,\"name\":\"%s\","
                     "\"args\":{\"v\":%" PRIu64 "}},\n",
                     TsLocked(now), pid_, name.c_str(), value);
      }
      // Footer event carries no trailing comma, closing the JSON array.
      std::fprintf(file_,
                   "{\"ph\":\"M\",\"ts\":%" PRIu64
                   ",\"pid\":%d,\"tid\":0,\"name\":\"trace_end\","
                   "\"args\":{\"v\":%" PRIu64 "}}\n]\n",
                   TsLocked(now), pid_, events_);
      std::fclose(file_);
      file_ = nullptr;
    }
  }

  // One event line. `end_s < 0` means "no dur field" (B/E/i/M phases);
  // otherwise emits an "X" complete event with dur = end_s - start_s.
  void Emit(const char* ph, const char* name, const char* cat, double start_s,
            double end_s, bool has_arg, std::int64_t arg) {
    const MutexLock lock(&mu_);
    EmitLocked(ph, name, cat, start_s, end_s, has_arg, arg);
  }

 private:
  void EmitLocked(const char* ph, const char* name, const char* cat,
                  double start_s, double end_s, bool has_arg,
                  std::int64_t arg) BR_REQUIRES(mu_) {
    if (file_ == nullptr) {
      return;
    }
    char line[320];
    int n = std::snprintf(line, sizeof line,
                          "{\"ph\":\"%s\",\"ts\":%" PRIu64
                          ",\"pid\":%d,\"tid\":%d,\"name\":\"%s\","
                          "\"cat\":\"%s\"",
                          ph, TsLocked(start_s), pid_, ThisThreadTraceTid(),
                          name, cat);
    if (end_s >= 0.0) {
      const double dur = end_s > start_s ? end_s - start_s : 0.0;
      n += std::snprintf(line + n, sizeof line - n, ",\"dur\":%" PRIu64,
                         static_cast<std::uint64_t>(dur * 1e6 + 0.5));
    }
    if (has_arg) {
      n += std::snprintf(line + n, sizeof line - n,
                         ",\"args\":{\"v\":%lld}",
                         static_cast<long long>(arg));
    }
    std::snprintf(line + n, sizeof line - n, "},\n");
    std::fputs(line, file_);
    ++events_;
  }

  std::uint64_t TsLocked(double wall_s) const BR_REQUIRES(mu_) {
    const double rel = wall_s - start_wall_s_;
    return rel > 0.0 ? static_cast<std::uint64_t>(rel * 1e6 + 0.5) : 0;
  }

  // Close() has annotations attached to mu_; this wrapper exists so Open()
  // can restart an already-running trace without holding mu_ across the
  // metrics snapshot Close() takes.
  void CloseLocked_Outer() { Close(); }

  mutable Mutex mu_;
  std::FILE* file_ BR_GUARDED_BY(mu_) = nullptr;
  double start_wall_s_ BR_GUARDED_BY(mu_) = 0.0;
  std::uint64_t events_ BR_GUARDED_BY(mu_) = 0;
  const int pid_ = static_cast<int>(::getpid());
};

TraceWriter& Writer() {
  static TraceWriter* writer = new TraceWriter;  // never destroyed
  return *writer;
}

}  // namespace

bool StartTrace(const std::string& path, std::string* error) {
  if (!Writer().Open(path, error)) {
    return false;
  }
  // Traces embed a counter footer; make sure counters actually count.
  SetMetricsEnabled(true);
  return true;
}

bool StartTraceFromEnv(std::string* error) {
  const char* path = std::getenv("BYTEROBUST_TRACE");
  if (path == nullptr || path[0] == '\0') {
    return true;
  }
  return StartTrace(path, error);
}

void StopTrace() { Writer().Close(); }

void TraceComplete(const char* name, const char* cat, double start_s,
                   double end_s) {
  if (!TraceEnabled()) {
    return;
  }
  Writer().Emit("X", name, cat, start_s, end_s, /*has_arg=*/false, 0);
}

void TraceInstant(const char* name, const char* cat) {
  if (!TraceEnabled()) {
    return;
  }
  Writer().Emit("i", name, cat, WallSeconds(), -1.0, /*has_arg=*/false, 0);
}

void TraceInstantArg(const char* name, const char* cat, std::int64_t arg) {
  if (!TraceEnabled()) {
    return;
  }
  Writer().Emit("i", name, cat, WallSeconds(), -1.0, /*has_arg=*/true, arg);
}

ScopedSpan::ScopedSpan(const char* name, const char* cat, bool has_arg,
                       std::int64_t arg)
    : name_(name), cat_(cat), active_(TraceEnabled()) {
  if (active_) {
    Writer().Emit("B", name_, cat_, WallSeconds(), -1.0, has_arg, arg);
  }
}

ScopedSpan::~ScopedSpan() {
  if (active_) {
    Writer().Emit("E", name_, cat_, WallSeconds(), -1.0, /*has_arg=*/false,
                  0);
  }
}

}  // namespace obs
}  // namespace byterobust

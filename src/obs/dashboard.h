// Sliding-window ETTR/MFU dashboard export for campaign and fleet runs.
//
// `--dashboard <file>` enables a process-global collector; each simulated
// job (one per campaign seed, one per fleet job per seed) contributes a
// windowed series sampled from its EttrTracker / MfuSeries at end of run:
// kDashboardPoints checkpoints across the retained metric window, each with
// the one-hour sliding ETTR and the nearest retained MFU sample. The CLI
// writes one deterministic JSON document after the engine finishes.
//
// Rides the existing retention machinery (BYTEROBUST_METRIC_WINDOW): with
// the default two-hour retention the dashboard covers the trailing two
// simulated hours per job; with retention 0 it covers the whole run.
//
// Side channel contract: collection never touches campaign/fleet output
// bytes (pinned by the cli_observability_equivalence gate). Entries are
// keyed by (campaign seed, job ordinal) in an ordered map, so the document
// is byte-stable across --jobs and worker interleavings.

#ifndef SRC_OBS_DASHBOARD_H_
#define SRC_OBS_DASHBOARD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/metrics/ettr.h"

namespace byterobust {
namespace obs {

inline constexpr int kDashboardPoints = 16;

struct DashboardPoint {
  double t_s = 0.0;           // simulated seconds since campaign start
  double sliding_ettr = 0.0;  // one-hour sliding ETTR at t
  double mfu = 0.0;           // newest retained MFU sample at/before t
};

struct DashboardJob {
  std::string label;  // "<scenario> seed <seed>" or ".../<fleet job>"
  std::uint64_t seed = 0;
  int ordinal = 0;  // job index inside a fleet seed; 0 for plain campaigns
  double cumulative_ettr = 0.0;
  double min_mfu = 0.0;
  double max_mfu = 0.0;
  std::int64_t productive_steps = 0;
  std::vector<DashboardPoint> points;
};

// True when --dashboard armed a collector; instrument sites check this
// before sampling (same cheap-when-off contract as TraceEnabled()).
bool DashboardEnabled();

// Arms the process-global collector; the CLI calls this before running the
// engine and WriteDashboard() after.
void EnableDashboard();

// Samples one finished job's trackers into a DashboardJob series.
DashboardJob SampleDashboardJob(const std::string& label, std::uint64_t seed,
                                int ordinal, const EttrTracker& ettr,
                                const MfuSeries& mfu, SimTime now);

// Records a job under (seed, ordinal); last write wins, so a retried seed's
// final attempt replaces any partial earlier one. Thread-safe.
void RecordDashboardJob(DashboardJob job);

// Renders every recorded job as a JSON document and writes it to `path`.
// False + *error on I/O failure. Disarms the collector either way.
bool WriteDashboard(const std::string& path, std::string* error);

}  // namespace obs
}  // namespace byterobust

#endif  // SRC_OBS_DASHBOARD_H_

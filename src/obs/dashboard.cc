#include "src/obs/dashboard.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#include "src/campaign/json_writer.h"
#include "src/common/sync.h"
#include "src/common/thread_annotations.h"

namespace byterobust {
namespace obs {

namespace {

std::atomic<bool> g_dashboard_enabled{false};

// (seed, ordinal) -> job. An ordered map makes the rendered document
// independent of which worker finished first.
using JobKey = std::pair<std::uint64_t, int>;

class DashboardCollector {
 public:
  void Record(DashboardJob job) {
    const MutexLock lock(&mu_);
    jobs_[JobKey(job.seed, job.ordinal)] = std::move(job);
  }

  std::map<JobKey, DashboardJob> Take() {
    const MutexLock lock(&mu_);
    std::map<JobKey, DashboardJob> out;
    out.swap(jobs_);
    return out;
  }

 private:
  Mutex mu_;
  std::map<JobKey, DashboardJob> jobs_ BR_GUARDED_BY(mu_);
};

DashboardCollector& Collector() {
  static DashboardCollector* collector = new DashboardCollector;
  return *collector;
}

}  // namespace

bool DashboardEnabled() {
  return g_dashboard_enabled.load(std::memory_order_relaxed);
}

void EnableDashboard() {
  g_dashboard_enabled.store(true, std::memory_order_relaxed);
}

DashboardJob SampleDashboardJob(const std::string& label, std::uint64_t seed,
                                int ordinal, const EttrTracker& ettr,
                                const MfuSeries& mfu, SimTime now) {
  DashboardJob job;
  job.label = label;
  job.seed = seed;
  job.ordinal = ordinal;
  job.cumulative_ettr = ettr.CumulativeEttr(now);
  job.min_mfu = mfu.MinMfu();
  job.max_mfu = mfu.MaxMfu();
  job.productive_steps = ettr.productive_steps();

  // Sample across the retained window (whole run when retention is 0). The
  // sliding window is clamped to the retention so every checkpoint stays in
  // the range the compacted tracker answers exactly at the live edge.
  const SimDuration retention = ettr.retention();
  SimTime start = 0;
  if (retention > 0 && now > retention) {
    start = now - retention;
  }
  SimDuration window = Hours(1);
  if (retention > 0) {
    window = std::min(window, retention);
  }
  const std::deque<MfuSample>& samples = mfu.samples();
  for (int k = 0; k < kDashboardPoints; ++k) {
    const SimTime t =
        kDashboardPoints <= 1
            ? now
            : start + (now - start) * k / (kDashboardPoints - 1);
    DashboardPoint point;
    point.t_s = ToSeconds(t);
    point.sliding_ettr = ettr.SlidingEttr(t, window);
    // Newest retained MFU sample at/before t (samples are append-ordered).
    const auto it = std::upper_bound(
        samples.begin(), samples.end(), t,
        [](SimTime lhs, const MfuSample& s) { return lhs < s.time; });
    point.mfu = it == samples.begin() ? 0.0 : std::prev(it)->mfu;
    job.points.push_back(point);
  }
  return job;
}

void RecordDashboardJob(DashboardJob job) {
  Collector().Record(std::move(job));
}

bool WriteDashboard(const std::string& path, std::string* error) {
  const std::map<JobKey, DashboardJob> jobs = Collector().Take();
  g_dashboard_enabled.store(false, std::memory_order_relaxed);

  JsonWriter writer;
  writer.BeginObject();
  writer.Field("tool", "byterobust");
  writer.Field("kind", "dashboard");
  writer.Field("points_per_job", kDashboardPoints);
  writer.Field("jobs_total", static_cast<std::int64_t>(jobs.size()));
  writer.Key("jobs");
  writer.BeginArray();
  for (const auto& [key, job] : jobs) {
    writer.BeginObject();
    writer.Field("label", job.label);
    writer.Field("seed", job.seed);
    writer.Field("ordinal", job.ordinal);
    writer.Field("cumulative_ettr", job.cumulative_ettr);
    writer.Field("min_mfu", job.min_mfu);
    writer.Field("max_mfu", job.max_mfu);
    writer.Field("productive_steps", job.productive_steps);
    writer.Key("points");
    writer.BeginArray();
    for (const DashboardPoint& point : job.points) {
      writer.BeginObject();
      writer.Field("t_s", point.t_s);
      writer.Field("sliding_ettr", point.sliding_ettr);
      writer.Field("mfu", point.mfu);
      writer.EndObject();
    }
    writer.EndArray();
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();

  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    if (error != nullptr) {
      *error = "cannot open dashboard file '" + path + "': " +
               std::strerror(errno);
    }
    return false;
  }
  const std::string doc = writer.Take() + "\n";
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), file) == doc.size();
  if (std::fclose(file) != 0 || !ok) {
    if (error != nullptr) {
      *error = "cannot write dashboard file '" + path + "'";
    }
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace byterobust

// Thread-safe metrics registry: counters, gauges, and fixed-bucket latency
// histograms with p50/p90/p99 readout.
//
// Hot-path design: every instrument shards its cells across kMetricShards
// cacheline-padded relaxed atomics, indexed by a per-thread slot, so
// concurrent workers never contend on one cacheline. Reads (Value/Snap)
// merge the shards; the registry's name->instrument maps are the only
// mutex-guarded state (BR_GUARDED_BY, node-stable std::map so returned
// pointers survive later registrations).
//
// Disabled path: like BR_LOG_* / TraceEnabled(), recording first checks one
// inlined relaxed atomic load and returns. Metrics are enabled by the serve
// daemon at Start() and whenever a trace is recording; plain CLI runs leave
// them off. Either way the instruments are side channels — campaign, fleet,
// and serve response bytes are identical with metrics on or off.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "src/common/sync.h"
#include "src/common/thread_annotations.h"

namespace byterobust {
namespace obs {

namespace metrics_internal {
// In the header so MetricsEnabled() inlines to one relaxed load; write
// through SetMetricsEnabled(). Relaxed is enough: the flag filters what is
// recorded, it synchronizes nothing.
extern std::atomic<bool> g_metrics_enabled;

inline constexpr std::size_t kMetricShards = 8;

// Stable per-thread shard slot in [0, kMetricShards). Threads are dealt
// slots round-robin on first use, so a worker pool spreads evenly.
std::size_t ThisThreadShard();

struct alignas(64) ShardedCell {
  std::atomic<std::uint64_t> v{0};
};
}  // namespace metrics_internal

inline bool MetricsEnabled() {
  return metrics_internal::g_metrics_enabled.load(std::memory_order_relaxed);
}
void SetMetricsEnabled(bool enabled);

// Monotonic counter. Add() on the disabled path is one relaxed load.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    if (!MetricsEnabled()) {
      return;
    }
    cells_[metrics_internal::ThisThreadShard()].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const;

 private:
  metrics_internal::ShardedCell cells_[metrics_internal::kMetricShards];
};

// Last-writer-wins signed gauge (queue depth, active workers).
class Gauge {
 public:
  void Set(std::int64_t v) {
    if (!MetricsEnabled()) {
      return;
    }
    v_.store(v, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    if (!MetricsEnabled()) {
      return;
    }
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Fixed-bucket latency histogram over seconds. Buckets are log-spaced
// (doubling) upper bounds from kFirstBucketS with a +inf overflow bucket,
// covering 100us .. ~54min — wide enough for a serve request and for a
// supervised seed attempt. Quantiles interpolate linearly inside the
// holding bucket, so p99 error is bounded by one bucket's width.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 26;
  static constexpr double kFirstBucketS = 1e-4;
  // Inclusive upper bound of bucket i; +inf for the last bucket.
  static double BucketUpperBoundS(std::size_t i);

  // Always records when metrics are enabled; Observe with metrics disabled
  // is the same one-load no-op as Counter::Add.
  void Observe(double seconds);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum_s = 0.0;
    double max_s = 0.0;
    std::uint64_t buckets[kBuckets] = {};
    // Quantile q in [0,1] in seconds; 0 when empty.
    double QuantileS(double q) const;
  };
  Snapshot Snap() const;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> buckets[kBuckets] = {};
    std::atomic<std::uint64_t> sum_us{0};
    std::atomic<std::uint64_t> max_us{0};
  };
  Shard shards_[metrics_internal::kMetricShards];
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, LatencyHistogram::Snapshot> histograms;
};

// Name -> instrument registry. Get* registers on first use and returns a
// pointer that stays valid for the registry's lifetime (node-stable map).
// Instruments are cheap to hold, so call sites cache the pointer in a
// function-local static.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  // Coherent-enough snapshot: each instrument merges its shards while the
  // registry mutex pins the maps; counts recorded concurrently may or may
  // not be included, exactly like any sampled metrics read.
  MetricsSnapshot Snap() const;

 private:
  mutable Mutex mu_;
  std::map<std::string, Counter> counters_ BR_GUARDED_BY(mu_);
  std::map<std::string, Gauge> gauges_ BR_GUARDED_BY(mu_);
  std::map<std::string, LatencyHistogram> histograms_ BR_GUARDED_BY(mu_);
};

// The process-wide registry used by harness/campaign/serve instrumentation.
MetricsRegistry& GlobalMetrics();

}  // namespace obs
}  // namespace byterobust

#endif  // SRC_OBS_METRICS_H_

// Trace-span recorder emitting Chrome trace_event JSON.
//
// A process-global writer, off by default, enabled by `--trace <file>` or
// BYTEROBUST_TRACE. When enabled, instrumented sites across the harness
// (seed attempts, retries, watchdog fires, quarantines, journal commits),
// the campaign engine (worker seed occupancy, ordered-commit waits, spill
// merge), and the serve daemon (admit -> queue -> run -> respond, sheds,
// cancels) append events the Perfetto / chrome://tracing viewers open
// directly.
//
// Determinism contract: the trace is strictly a side channel. Campaign,
// fleet, and serve response bytes are identical with tracing on or off —
// pinned by the cli_observability_equivalence ctest gate. Timestamps come
// from the WallSeconds() shim (the one lint-allowlisted wall-clock site),
// so the determinism lint stays clean.
//
// File format (one event per line, so a SIGTERM mid-run leaves at most one
// torn final line — tools/trace_validate.py repairs and checks exactly that):
//
//   [
//   {"ph":"B","ts":12,"pid":1,"tid":1,"name":"seed","cat":"campaign"},
//   {"ph":"E","ts":90,"pid":1,"tid":1,"name":"seed","cat":"campaign"},
//   {"ph":"M",...,"name":"trace_end"}
//   ]
//
// The disabled path is as cheap as a BR_LOG_* check: one inlined relaxed
// atomic load before any argument evaluation or clock read.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace byterobust {
namespace obs {

namespace trace_internal {
// Lives in the header so TraceEnabled() inlines to one relaxed atomic load
// (the BR_LOG_* model). Flipped only by StartTrace/StopTrace; relaxed
// ordering suffices because the writer re-checks under its mutex — the flag
// is a filter, not a synchronization edge.
extern std::atomic<bool> g_trace_enabled;
}  // namespace trace_internal

// True when a trace file is open. Instrumented sites test this before
// building names or reading the clock, so a disabled site costs one load.
inline bool TraceEnabled() {
  return trace_internal::g_trace_enabled.load(std::memory_order_relaxed);
}

// Opens `path` and starts recording. False + *error if the file cannot be
// opened (an already-running trace is stopped first, so the last Start
// wins). Also enables the metrics registry (src/obs/metrics.h) so the
// StopTrace() footer can embed final counter values.
bool StartTrace(const std::string& path, std::string* error);

// StartTrace(getenv("BYTEROBUST_TRACE")) when the variable is set and
// non-empty; no-op (true) otherwise.
bool StartTraceFromEnv(std::string* error);

// Writes counter footer events + the closing "]" and closes the file.
// Idempotent; safe if no trace is running.
void StopTrace();

// Emits a complete ("X" phase) event covering [start_s, end_s] on the
// calling thread's track — for retroactively-known intervals such as a
// serve request's queue wait. Times are WallSeconds() readings.
void TraceComplete(const char* name, const char* cat, double start_s,
                   double end_s);

// Emits an instant ("i" phase) event, optionally with one integer arg
// rendered as {"v":arg} — e.g. watchdog_fire, request_shed.
void TraceInstant(const char* name, const char* cat);
void TraceInstantArg(const char* name, const char* cat, std::int64_t arg);

// RAII span: "B" at construction, "E" at destruction, on the calling
// thread's track. Events nest per thread, so scoped spans always produce
// balanced, properly nested B/E pairs. `name` and `cat` must outlive the
// span (string literals at every call site).
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat)
      : ScopedSpan(name, cat, /*has_arg=*/false, 0) {}
  ScopedSpan(const char* name, const char* cat, std::int64_t arg)
      : ScopedSpan(name, cat, /*has_arg=*/true, arg) {}
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  ScopedSpan(const char* name, const char* cat, bool has_arg,
             std::int64_t arg);
  const char* name_;
  const char* cat_;
  bool active_;  // trace was enabled at construction; emit the matching E
};

}  // namespace obs
}  // namespace byterobust

#endif  // SRC_OBS_TRACE_H_

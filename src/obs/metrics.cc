#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace byterobust {
namespace obs {

namespace metrics_internal {

std::atomic<bool> g_metrics_enabled{false};

namespace {
std::atomic<std::size_t> g_next_slot{0};
thread_local std::size_t t_shard = kMetricShards;  // sentinel: unassigned
}  // namespace

std::size_t ThisThreadShard() {
  if (t_shard == kMetricShards) {
    t_shard = g_next_slot.fetch_add(1, std::memory_order_relaxed) %
              kMetricShards;
  }
  return t_shard;
}

}  // namespace metrics_internal

void SetMetricsEnabled(bool enabled) {
  metrics_internal::g_metrics_enabled.store(enabled,
                                            std::memory_order_relaxed);
}

std::uint64_t Counter::Value() const {
  std::uint64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

double LatencyHistogram::BucketUpperBoundS(std::size_t i) {
  if (i + 1 >= kBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  double bound = kFirstBucketS;
  for (std::size_t k = 0; k < i; ++k) {
    bound *= 2.0;
  }
  return bound;
}

void LatencyHistogram::Observe(double seconds) {
  if (!MetricsEnabled()) {
    return;
  }
  if (seconds < 0.0) {
    seconds = 0.0;
  }
  std::size_t bucket = 0;
  double bound = kFirstBucketS;
  while (bucket + 1 < kBuckets && seconds > bound) {
    bound *= 2.0;
    ++bucket;
  }
  Shard& shard = shards_[metrics_internal::ThisThreadShard()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  const auto us = static_cast<std::uint64_t>(seconds * 1e6 + 0.5);
  shard.sum_us.fetch_add(us, std::memory_order_relaxed);
  std::uint64_t seen = shard.max_us.load(std::memory_order_relaxed);
  while (us > seen && !shard.max_us.compare_exchange_weak(
                          seen, us, std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  Snapshot snap;
  std::uint64_t sum_us = 0;
  std::uint64_t max_us = 0;
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      snap.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    sum_us += shard.sum_us.load(std::memory_order_relaxed);
    max_us = std::max(max_us, shard.max_us.load(std::memory_order_relaxed));
  }
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap.count += snap.buckets[i];
  }
  snap.sum_s = static_cast<double>(sum_us) * 1e-6;
  snap.max_s = static_cast<double>(max_us) * 1e-6;
  return snap;
}

double LatencyHistogram::Snapshot::QuantileS(double q) const {
  if (count == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based), nearest-rank then interpolate
  // within the bucket that holds it.
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (seen + buckets[i] < rank) {
      seen += buckets[i];
      continue;
    }
    const double lo = i == 0 ? 0.0 : BucketUpperBoundS(i - 1);
    double hi = BucketUpperBoundS(i);
    if (std::isinf(hi)) {
      // Overflow bucket: the best point estimate available is the max.
      return max_s;
    }
    const double frac = buckets[i] == 0
                            ? 1.0
                            : static_cast<double>(rank - seen) /
                                  static_cast<double>(buckets[i]);
    // No observation exceeds the recorded max, so interpolation never
    // should either (otherwise p50 of a single sample reads above max).
    return max_s > 0.0 ? std::min(lo + (hi - lo) * frac, max_s)
                       : lo + (hi - lo) * frac;
  }
  return max_s;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  const MutexLock lock(&mu_);
  return &counters_[name];
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  const MutexLock lock(&mu_);
  return &gauges_[name];
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  const MutexLock lock(&mu_);
  return &histograms_[name];
}

MetricsSnapshot MetricsRegistry::Snap() const {
  MetricsSnapshot snap;
  const MutexLock lock(&mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter.Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge.Value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist.Snap();
  }
  return snap;
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry;  // never destroyed
  return *registry;
}

}  // namespace obs
}  // namespace byterobust

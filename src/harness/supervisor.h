// Seed supervisor: runs each campaign seed under a wall-clock watchdog with
// bounded, deterministically-jittered retries, and quarantines seeds that
// keep failing instead of aborting the campaign.
//
// Supervision model: every attempt runs on its own thread with everything it
// needs copied by value, plus a cooperative CancelToken. When the watchdog
// deadline passes, the supervisor cancels the token and grants a short grace
// period; a worker that yields (throws SeedCancelledError) is a transient
// timeout and is retried, while a worker that never yields is abandoned via
// detach() — it can no longer touch any live frame — and the seed is
// quarantined immediately, because a deterministic hang would only hang
// again. A seed that completes successfully after cancellation is accepted:
// timing must never change output bytes.
//
// The watchdog deadline is a trailing EWMA of successful seed durations
// scaled by `timeout_factor`, floored at `timeout_floor_s`, or pinned by
// BYTEROBUST_SEED_TIMEOUT_S. Timing only steers scheduling (when to cancel,
// how long to sleep between retries); it never reaches campaign output.
//
// Self-fault-injection (BYTEROBUST_HARNESS_FAULTS) strikes these worker
// threads before the real seed function runs, with decisions drawn from an
// Rng keyed on (campaign seed, seed index, attempt, fault kind) — identical
// across --jobs values, so a faulted campaign that completes is
// byte-identical to a clean one.

#ifndef SRC_HARNESS_SUPERVISOR_H_
#define SRC_HARNESS_SUPERVISOR_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "src/common/sync.h"
#include "src/common/thread_annotations.h"
#include "src/harness/backoff.h"
#include "src/harness/wallclock.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace byterobust {

// Cooperative cancellation handle passed to every supervised attempt. The
// flag lives on the heap (shared_ptr) so an abandoned attempt may keep
// polling it safely after the supervisor has moved on.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}
  explicit CancelToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

// Thrown by a cancelled worker that noticed its token — a cooperative
// timeout, classified transient (retried).
class SeedCancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Thrown by the self-fault-injection layer.
class InjectedFaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Parsed BYTEROBUST_HARNESS_FAULTS spec. Grammar: comma-separated
// `kind:value` pairs — `crash:P`, `hang:P`, `throw:P` (probabilities in
// [0,1], independently re-drawn per attempt), `crash_seed:IDX` (that seed
// index fails every attempt — the persistent-failure/quarantine case), and
// `stop_after:K` (request campaign stop once K seeds have committed — the
// deterministic stand-in for SIGINT in tests).
struct HarnessFaultSpec {
  double crash_p = 0.0;
  double hang_p = 0.0;
  double throw_p = 0.0;
  int crash_seed = -1;
  int stop_after = -1;

  bool any() const {
    return crash_p > 0.0 || hang_p > 0.0 || throw_p > 0.0 || crash_seed >= 0 ||
           stop_after >= 0;
  }

  static bool Parse(const std::string& text, HarnessFaultSpec* spec,
                    std::string* error);
};

struct SupervisorConfig {
  int max_attempts = 3;            // 1 initial try + (max_attempts - 1) retries
  BackoffConfig backoff;           // pacing between retries
  double timeout_override_s = 0.0; // > 0 pins the watchdog deadline
  // Minimum deadline, and the deadline before any duration estimate exists.
  // Deliberately generous: a spurious cancellation of a slow-but-healthy
  // seed would change campaign output, while a true hang only costs these
  // minutes once. Tests pin BYTEROBUST_SEED_TIMEOUT_S instead.
  double timeout_floor_s = 300.0;
  double timeout_factor = 10.0;    // deadline = factor * trailing seed duration
  double cancel_grace_s = 0.5;     // wait after cancel before abandoning
  std::uint64_t seed = 0;          // campaign base seed; keys backoff jitter + faults
  HarnessFaultSpec faults;
  std::atomic<bool>* external_stop = nullptr;  // shared with the signal handler

  // Applies BYTEROBUST_SEED_RETRIES / BYTEROBUST_SEED_TIMEOUT_S /
  // BYTEROBUST_SEED_TIMEOUT_FACTOR / BYTEROBUST_HARNESS_FAULTS on top of the
  // defaults. False + *error on a malformed value.
  static bool FromEnv(std::uint64_t campaign_seed, SupervisorConfig* config,
                      std::string* error);
};

// Why a seed was quarantined.
struct SeedFailure {
  int index = -1;
  int attempts = 0;
  bool timed_out = false;
  std::string error;
};

namespace harness_internal {

enum class AttemptOutcome { kOk, kCancelled, kError };

// Shared between the supervisor and one attempt thread; heap-allocated so an
// abandoned thread's final store cannot touch a dead frame.
struct AttemptState {
  Mutex mu;
  CondVar cv;
  bool done BR_GUARDED_BY(mu) = false;
  AttemptOutcome outcome BR_GUARDED_BY(mu) = AttemptOutcome::kOk;
  std::string error BR_GUARDED_BY(mu);
};

}  // namespace harness_internal

// Deterministically decides whether this (seed index, attempt) draws an
// injected fault, and delivers it: crash/throw raise InjectedFaultError,
// hang spins on the token until the watchdog cancels it.
void InjectHarnessFault(const HarnessFaultSpec& faults, std::uint64_t seed,
                        int index, int attempt, const CancelToken& token);

class SeedSupervisor {
 public:
  explicit SeedSupervisor(const SupervisorConfig& config) : config_(config) {}
  SeedSupervisor(const SeedSupervisor&) = delete;
  SeedSupervisor& operator=(const SeedSupervisor&) = delete;

  // Runs `fn` for seed `index` under watchdog + retry. True: *result holds
  // the successful attempt's value. False: the seed is quarantined and
  // *failure says why. Safe to call from many worker threads at once.
  template <typename Result>
  bool Supervise(int index, std::function<Result(const CancelToken&)> fn,
                 Result* result, SeedFailure* failure);

  // Stop plumbing, shared with the CLI's signal handler through
  // config_.external_stop. NoteCommitted also honours the stop_after fault.
  void RequestStop();
  bool stop_requested() const;
  void NoteCommitted();
  int committed() const { return committed_.load(std::memory_order_acquire); }

  // Current watchdog deadline in seconds (exposed for tests).
  double AttemptTimeoutS() const;

 private:
  void NoteDuration(double seconds);
  void BackoffSleep(int index, int retry) const;
  static std::string WatchdogMessage(double deadline_s);

  const SupervisorConfig config_;
  mutable Mutex mu_;
  double ewma_seconds_ BR_GUARDED_BY(mu_) = 0.0;
  bool have_estimate_ BR_GUARDED_BY(mu_) = false;
  std::atomic<int> committed_{0};
};

template <typename Result>
bool SeedSupervisor::Supervise(int index,
                               std::function<Result(const CancelToken&)> fn,
                               Result* result, SeedFailure* failure) {
  using harness_internal::AttemptOutcome;
  using harness_internal::AttemptState;
  // Observability side channel (src/obs): counters + trace spans for every
  // supervision event. Disabled-path cost is one relaxed load per site;
  // nothing here reaches campaign output bytes.
  static obs::Counter* const attempts_counter =
      obs::GlobalMetrics().GetCounter("harness.attempts");
  static obs::Counter* const retries_counter =
      obs::GlobalMetrics().GetCounter("harness.retries");
  static obs::Counter* const watchdog_counter =
      obs::GlobalMetrics().GetCounter("harness.watchdog_fires");
  static obs::Counter* const quarantine_counter =
      obs::GlobalMetrics().GetCounter("harness.quarantines");
  const int max_attempts = std::max(1, config_.max_attempts);
  std::string last_error;
  bool last_timed_out = false;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      retries_counter->Add();
      obs::TraceInstantArg("seed_retry", "harness", index);
      const obs::ScopedSpan backoff_span("retry_backoff", "harness", index);
      BackoffSleep(index, attempt - 1);
    }
    attempts_counter->Add();
    const obs::ScopedSpan attempt_span("seed_attempt", "harness", index);
    auto shared = std::make_shared<AttemptState>();
    auto slot = std::make_shared<Result>();
    auto cancel = std::make_shared<std::atomic<bool>>(false);
    const CancelToken token(cancel);
    // The attempt closure copies everything by value: once detach()ed it
    // must never reference the supervisor, the caller, or this frame.
    const HarnessFaultSpec faults = config_.faults;
    const std::uint64_t seed = config_.seed;
    std::thread worker([fn, token, shared, slot, faults, seed, index, attempt] {
      AttemptOutcome outcome = AttemptOutcome::kOk;
      std::string error;
      try {
        InjectHarnessFault(faults, seed, index, attempt, token);
        *slot = fn(token);
      } catch (const SeedCancelledError& e) {
        outcome = AttemptOutcome::kCancelled;
        error = e.what();
      } catch (const std::exception& e) {
        outcome = AttemptOutcome::kError;
        error = e.what();
      } catch (...) {
        outcome = AttemptOutcome::kError;
        error = "unknown exception";
      }
      const MutexLock lock(&shared->mu);
      shared->done = true;
      shared->outcome = outcome;
      shared->error = std::move(error);
      shared->cv.NotifyAll();
    });
    const double deadline_s = AttemptTimeoutS();
    const double start = WallSeconds();
    bool done = false;
    {
      const MutexLock lock(&shared->mu);
      while (!shared->done) {
        const double remaining = deadline_s - (WallSeconds() - start);
        if (remaining <= 0.0) {
          break;
        }
        shared->cv.WaitFor(&shared->mu, remaining);
      }
      done = shared->done;
    }
    if (!done) {
      watchdog_counter->Add();
      obs::TraceInstantArg("watchdog_fire", "harness", index);
      cancel->store(true, std::memory_order_relaxed);
      const MutexLock lock(&shared->mu);
      while (!shared->done) {
        const double grace_left =
            (start + deadline_s + config_.cancel_grace_s) - WallSeconds();
        if (grace_left <= 0.0) {
          break;
        }
        shared->cv.WaitFor(&shared->mu, grace_left);
      }
      done = shared->done;
    }
    if (!done) {
      // Non-cooperative hang: abandon the thread (it owns only heap state via
      // shared_ptr) and quarantine without retrying — a deterministic hang
      // would only hang again.
      worker.detach();
      quarantine_counter->Add();
      obs::TraceInstantArg("seed_quarantine", "harness", index);
      failure->index = index;
      failure->attempts = attempt;
      failure->timed_out = true;
      failure->error = WatchdogMessage(deadline_s);
      return false;
    }
    worker.join();
    AttemptOutcome outcome;
    std::string error;
    {
      const MutexLock lock(&shared->mu);
      outcome = shared->outcome;
      error = shared->error;
    }
    if (outcome == AttemptOutcome::kOk) {
      NoteDuration(WallSeconds() - start);
      *result = std::move(*slot);
      return true;
    }
    last_timed_out = outcome == AttemptOutcome::kCancelled;
    last_error = std::move(error);
  }
  quarantine_counter->Add();
  obs::TraceInstantArg("seed_quarantine", "harness", index);
  failure->index = index;
  failure->attempts = max_attempts;
  failure->timed_out = last_timed_out;
  failure->error = last_error;
  return false;
}

}  // namespace byterobust

#endif  // SRC_HARNESS_SUPERVISOR_H_

// Process exit codes shared by the byterobust CLI, the campaign engine and
// the serve daemon's error -> response mapping. One definition so the CLI
// contract (documented in tools/byterobust_cli.cc and README.md) and the
// serve envelope "exit_code" field cannot drift apart.

#ifndef SRC_HARNESS_EXIT_CODES_H_
#define SRC_HARNESS_EXIT_CODES_H_

namespace byterobust {

// Clean completion.
inline constexpr int kExitOk = 0;

// I/O or worker error: short write on stdout/--out, spill failure, or an
// exception escaping the worker pool.
inline constexpr int kExitIoError = 1;

// Usage or setup error: bad flags, unknown scenario, bad env knob, or an
// unreadable/mismatched resume journal. Nothing was simulated.
inline constexpr int kExitUsage = 2;

// Campaign completed but one or more seeds exhausted their retries and were
// quarantined into the document's "failed_runs" block.
inline constexpr int kExitQuarantine = 20;

// Campaign (or daemon) interrupted — signal, deadline, client disconnect or
// injected stop — after a graceful drain of in-flight work.
inline constexpr int kExitInterrupted = 30;

// Serve admission control shed the request (queue full or daemon draining):
// nothing ran, retry later. Value follows sysexits.h EX_TEMPFAIL.
inline constexpr int kExitShed = 75;

}  // namespace byterobust

#endif  // SRC_HARNESS_EXIT_CODES_H_

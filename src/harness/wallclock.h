// Wall-clock and sleep shim for harness supervision code.
//
// The simulator itself must never read real time (the determinism lint
// rejects wall-clock calls on sight), but the harness that *hosts* campaign
// workers has to: watchdog deadlines, retry backoff pacing and trailing
// seed-duration estimates are properties of the machine the campaign runs
// on, not of the simulated world. This file is the single allowlisted
// wall-clock site (tools/determinism_lint_allow.txt); wall-clock values
// steer scheduling only and never reach campaign JSON.

#ifndef SRC_HARNESS_WALLCLOCK_H_
#define SRC_HARNESS_WALLCLOCK_H_

namespace byterobust {

// Monotonic wall-clock seconds since an arbitrary epoch (steady_clock).
double WallSeconds();

// Blocks the calling thread for roughly `ms` milliseconds (no-op for <= 0).
void SleepMs(double ms);

}  // namespace byterobust

#endif  // SRC_HARNESS_WALLCLOCK_H_

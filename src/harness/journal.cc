#include "src/harness/journal.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace byterobust {
namespace {

constexpr char kMagic[] = "byterobust-journal v1";

// One line, without its terminator. *had_newline says whether the line was
// actually terminated — a missing terminator is how crash truncation looks.
bool ReadLine(std::FILE* f, std::string* line, bool* had_newline) {
  line->clear();
  *had_newline = false;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') {
      *had_newline = true;
      return true;
    }
    line->push_back(static_cast<char>(c));
  }
  return !line->empty();
}

// Splits "key=value|key=value|..." (after the record tag) into a field map
// preserving nothing but the raw values; duplicate keys fail.
bool ParseFields(const std::string& body, std::map<std::string, std::string>* fields) {
  std::size_t pos = 0;
  while (pos <= body.size()) {
    const std::size_t end = std::min(body.find('|', pos), body.size());
    const std::string part = body.substr(pos, end - pos);
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0) {
      return false;
    }
    if (!fields->emplace(part.substr(0, eq), part.substr(eq + 1)).second) {
      return false;
    }
    pos = end + 1;
    if (end == body.size()) {
      break;
    }
  }
  return true;
}

bool LookupField(const std::map<std::string, std::string>& fields, const char* key,
                 std::string* out) {
  const auto it = fields.find(key);
  if (it == fields.end()) {
    return false;
  }
  *out = it->second;
  return true;
}

bool ParseU64(const std::string& text, std::uint64_t* out, int base = 10) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  *out = std::strtoull(text.c_str(), &end, base);
  return errno == 0 && end == text.c_str() + text.size();
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

std::string FormatDays(double days) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", days);
  return buf;
}

// Summary doubles travel as raw IEEE-754 bit patterns ("-" when empty) so
// resumed aggregate folds are bit-exact.
std::string EncodeSummary(const std::vector<double>& summary) {
  if (summary.empty()) {
    return "-";
  }
  std::string out;
  char buf[20];
  for (std::size_t i = 0; i < summary.size(); ++i) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &summary[i], sizeof(bits));
    std::snprintf(buf, sizeof(buf), "%s%016" PRIx64, i == 0 ? "" : ":", bits);
    out += buf;
  }
  return out;
}

bool DecodeSummary(const std::string& text, std::vector<double>* summary) {
  summary->clear();
  if (text == "-") {
    return true;
  }
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = std::min(text.find(':', pos), text.size());
    std::uint64_t bits = 0;
    if (!ParseU64(text.substr(pos, end - pos), &bits, 16)) {
      return false;
    }
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    summary->push_back(value);
    pos = end + 1;
    if (end == text.size()) {
      break;
    }
  }
  return true;
}

std::string FormatDigest(std::uint64_t digest) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "fnv1a:%016" PRIx64, digest);
  return buf;
}

// Identity values are embedded raw in '|'-separated lines; the repo's
// scenario names are plain tokens, but reject the separators outright so a
// hostile name cannot smuggle extra fields.
bool IdentityValueSafe(const std::string& value) {
  return value.find('|') == std::string::npos && value.find('\n') == std::string::npos;
}

std::string IdentityLine(const CampaignIdentity& id) {
  std::string line = "campaign|command=" + id.command + "|scenario=" + id.scenario +
                     "|seeds=" + std::to_string(id.seeds) +
                     "|base_seed=" + std::to_string(id.base_seed) +
                     "|days=" + FormatDays(id.days) + "|fingerprint=" + id.fingerprint +
                     "\n";
  return line;
}

}  // namespace

std::uint64_t Fnv1a64(const std::string& bytes) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string BinaryFingerprint() {
  static const std::string fingerprint = [] {
    std::FILE* f = std::fopen("/proc/self/exe", "rb");
    if (f == nullptr) {
      return std::string("unknown");
    }
    std::uint64_t hash = 14695981039346656037ULL;
    unsigned char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      for (std::size_t i = 0; i < n; ++i) {
        hash ^= buf[i];
        hash *= 1099511628211ULL;
      }
    }
    const bool bad = std::ferror(f) != 0;
    std::fclose(f);
    return bad ? std::string("unknown") : FormatDigest(hash);
  }();
  return fingerprint;
}

bool CampaignIdentity::Matches(const CampaignIdentity& other, std::string* why) const {
  if (command != other.command) {
    *why = "command mismatch (journal: " + command + ", campaign: " + other.command + ")";
    return false;
  }
  if (scenario != other.scenario) {
    *why = "scenario mismatch (journal: " + scenario + ", campaign: " + other.scenario + ")";
    return false;
  }
  if (seeds != other.seeds) {
    *why = "seeds mismatch (journal: " + std::to_string(seeds) +
           ", campaign: " + std::to_string(other.seeds) + ")";
    return false;
  }
  if (base_seed != other.base_seed) {
    *why = "base_seed mismatch (journal: " + std::to_string(base_seed) +
           ", campaign: " + std::to_string(other.base_seed) + ")";
    return false;
  }
  if (FormatDays(days) != FormatDays(other.days)) {
    *why = "days mismatch (journal: " + FormatDays(days) +
           ", campaign: " + FormatDays(other.days) + ")";
    return false;
  }
  if (fingerprint != "unknown" && other.fingerprint != "unknown" &&
      fingerprint != other.fingerprint) {
    *why = "binary fingerprint mismatch (journal written by a different build: " +
           fingerprint + " vs " + other.fingerprint + ")";
    return false;
  }
  return true;
}

CampaignJournal::~CampaignJournal() { Close(); }

bool CampaignJournal::open() const {
  const MutexLock lock(&mu_);
  return file_ != nullptr;
}

void CampaignJournal::Close() {
  const MutexLock lock(&mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool CampaignJournal::Create(const std::string& path, const CampaignIdentity& identity,
                             std::string* error, bool sync) {
  if (!IdentityValueSafe(identity.command) || !IdentityValueSafe(identity.scenario) ||
      !IdentityValueSafe(identity.fingerprint)) {
    *error = "journal identity fields must not contain '|' or newlines";
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    *error = "could not create journal " + path;
    return false;
  }
  const std::string header = std::string(kMagic) + "\n" + IdentityLine(identity);
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size() ||
      std::fflush(f) != 0) {
    std::fclose(f);
    *error = "could not write journal header to " + path;
    return false;
  }
  const MutexLock lock(&mu_);
  file_ = f;
  sync_ = sync;
  return true;
}

bool CampaignJournal::OpenForResume(const std::string& path, const CampaignIdentity& expect,
                                    std::map<int, JournalEntry>* completed,
                                    std::string* error, bool sync) {
  CampaignIdentity recorded;
  long valid_end = 0;
  if (!Load(path, &recorded, completed, &valid_end, error)) {
    return false;
  }
  std::string why;
  if (!recorded.Matches(expect, &why)) {
    *error = "cannot resume from " + path + ": " + why;
    return false;
  }
  // Drop any truncated tail before appending, so the next parse never sees
  // a fresh record glued onto half of an old one.
  if (truncate(path.c_str(), valid_end) != 0) {
    *error = "could not truncate journal " + path + " to its last complete record";
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    *error = "could not reopen journal " + path + " for appending";
    return false;
  }
  const MutexLock lock(&mu_);
  file_ = f;
  sync_ = sync;
  return true;
}

bool CampaignJournal::Append(const JournalEntry& entry) {
  std::string record = "seed|index=" + std::to_string(entry.index) +
                       "|summary=" + EncodeSummary(entry.summary) +
                       "|bytes=" + std::to_string(entry.element.size()) +
                       "|digest=" + FormatDigest(Fnv1a64(entry.element)) + "\n";
  record += entry.element;
  record += '\n';
  const MutexLock lock(&mu_);
  if (file_ == nullptr) {
    return false;
  }
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size() ||
      std::fflush(file_) != 0) {
    return false;
  }
  // --journal-sync: push the flushed record through the page cache so a
  // machine crash (not just a process crash) loses at most this record.
  return !sync_ || fdatasync(fileno(file_)) == 0;
}

bool CampaignJournal::Load(const std::string& path, CampaignIdentity* identity,
                           std::map<int, JournalEntry>* completed, long* valid_end,
                           std::string* error) {
  completed->clear();
  *valid_end = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "could not open journal " + path;
    return false;
  }
  std::string line;
  bool terminated = false;
  bool ok = false;
  bool dropped_tail = false;
  do {  // single-pass parse; break out on the first hard error
    if (!ReadLine(f, &line, &terminated) || !terminated || line != kMagic) {
      *error = "journal " + path + " is not a byterobust journal (bad magic)";
      break;
    }
    if (!ReadLine(f, &line, &terminated) || !terminated ||
        line.rfind("campaign|", 0) != 0) {
      *error = "journal " + path + " is missing its campaign identity header";
      break;
    }
    std::map<std::string, std::string> fields;
    std::string seeds_text, base_seed_text, days_text;
    std::uint64_t seeds_u64 = 0;
    if (!ParseFields(line.substr(std::strlen("campaign|")), &fields) ||
        !LookupField(fields, "command", &identity->command) ||
        !LookupField(fields, "scenario", &identity->scenario) ||
        !LookupField(fields, "seeds", &seeds_text) || !ParseU64(seeds_text, &seeds_u64) ||
        !LookupField(fields, "base_seed", &base_seed_text) ||
        !ParseU64(base_seed_text, &identity->base_seed) ||
        !LookupField(fields, "days", &days_text) ||
        !ParseDouble(days_text, &identity->days) ||
        !LookupField(fields, "fingerprint", &identity->fingerprint)) {
      *error = "journal " + path + " has a malformed campaign identity header";
      break;
    }
    identity->seeds = static_cast<int>(seeds_u64);
    *valid_end = std::ftell(f);

    bool hard_error = false;
    while (true) {
      if (!ReadLine(f, &line, &terminated)) {
        break;  // clean EOF at a record boundary
      }
      if (!terminated) {
        dropped_tail = true;  // crash truncation mid-header
        break;
      }
      std::map<std::string, std::string> rec;
      std::string index_text, summary_text, bytes_text, digest_text;
      std::uint64_t index_u64 = 0, bytes_u64 = 0;
      JournalEntry entry;
      if (line.rfind("seed|", 0) != 0 ||
          !ParseFields(line.substr(std::strlen("seed|")), &rec) ||
          !LookupField(rec, "index", &index_text) || !ParseU64(index_text, &index_u64) ||
          !LookupField(rec, "summary", &summary_text) ||
          !DecodeSummary(summary_text, &entry.summary) ||
          !LookupField(rec, "bytes", &bytes_text) || !ParseU64(bytes_text, &bytes_u64) ||
          !LookupField(rec, "digest", &digest_text)) {
        *error = "journal " + path + " has a malformed seed record";
        hard_error = true;
        break;
      }
      entry.index = static_cast<int>(index_u64);
      if (entry.index < 0 || entry.index >= identity->seeds) {
        *error = "journal " + path + " records seed index " + index_text +
                 " outside [0, " + std::to_string(identity->seeds) + ")";
        hard_error = true;
        break;
      }
      entry.element.resize(bytes_u64);
      const std::size_t got =
          entry.element.empty()
              ? 0
              : std::fread(entry.element.data(), 1, entry.element.size(), f);
      if (got != entry.element.size() || std::fgetc(f) != '\n') {
        dropped_tail = true;  // crash truncation mid-payload
        break;
      }
      if (FormatDigest(Fnv1a64(entry.element)) != digest_text) {
        *error = "journal " + path + " seed " + index_text +
                 " fails its digest check (corrupt journal)";
        hard_error = true;
        break;
      }
      const int index = entry.index;
      if (!completed->emplace(index, std::move(entry)).second) {
        *error = "journal " + path + " records seed index " + index_text + " twice";
        hard_error = true;
        break;
      }
      *valid_end = std::ftell(f);
    }
    ok = !hard_error;
  } while (false);
  std::fclose(f);
  if (ok && dropped_tail) {
    std::fprintf(stderr,
                 "warning: journal %s ends in an incomplete record (interrupted "
                 "append) — dropping the tail, %zu complete seed(s) kept\n",
                 path.c_str(), completed->size());
  }
  return ok;
}

}  // namespace byterobust

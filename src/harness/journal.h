// Resumable campaign journal: an append-only on-disk manifest of committed
// seeds, so an interrupted campaign (`--journal FILE`) can be resumed
// (`--resume FILE`) without re-running — or losing — finished work, and the
// merged output stays byte-identical to an uninterrupted run.
//
// Format (text-framed, append-only; one flush per record so a process crash
// loses at most the record being written):
//
//   byterobust-journal v1
//   campaign|command=campaign|scenario=dense|seeds=8|base_seed=42|days=0.4|fingerprint=fnv1a:...
//   seed|index=3|summary=<hex-bits>:<hex-bits>:...|bytes=531|digest=fnv1a:<hex>
//   <531 raw bytes of the rendered "runs" element>
//   seed|index=0|...
//
// Per-seed summary doubles are stored as raw IEEE-754 bit patterns so the
// aggregate fold over a resumed campaign is bit-exact. Each element carries
// an FNV-1a digest: a digest mismatch (corruption) rejects the journal,
// while a truncated trailing record — the crash case append-only journaling
// exists for — is dropped with a warning and everything before it is kept.

#ifndef SRC_HARNESS_JOURNAL_H_
#define SRC_HARNESS_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/common/sync.h"
#include "src/common/thread_annotations.h"

namespace byterobust {

// FNV-1a 64-bit over bytes; the journal's element digest and the binary
// fingerprint both use it.
std::uint64_t Fnv1a64(const std::string& bytes);

// Digest of this process's executable image (/proc/self/exe), formatted
// "fnv1a:<hex>"; "unknown" when the image cannot be read. A journal written
// by a different binary is rejected on resume — a rebuilt simulator may
// render different bytes for the same seed.
std::string BinaryFingerprint();

// What identifies a campaign for resume purposes. --jobs / --stream are
// deliberately absent: they never change output bytes.
struct CampaignIdentity {
  std::string command;   // "campaign" | "fleet"
  std::string scenario;
  int seeds = 0;
  std::uint64_t base_seed = 0;
  double days = 0.0;
  std::string fingerprint;

  // True when `other` names the same campaign; on mismatch fills *why with
  // the first differing field. Fingerprints compare only when both sides
  // know theirs ("unknown" matches anything).
  bool Matches(const CampaignIdentity& other, std::string* why) const;
};

// One committed seed: its aggregate-summary slots and rendered JSON element.
struct JournalEntry {
  int index = -1;
  std::vector<double> summary;
  std::string element;
};

class CampaignJournal {
 public:
  CampaignJournal() = default;
  ~CampaignJournal();
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  // Starts a fresh journal at `path` (truncating any existing file) and
  // writes the identity header. False + *error on I/O failure. `sync` makes
  // every committed record durable with fdatasync (--journal-sync): a machine
  // crash then loses at most the record being written, not the page cache.
  bool Create(const std::string& path, const CampaignIdentity& identity,
              std::string* error, bool sync = false);

  // Resumes from an existing journal: parses it (see Load), verifies the
  // recorded identity matches `expect`, fills *completed with the committed
  // seeds, truncates any incomplete trailing record, and reopens the file
  // for appending. False + *error on parse/identity/I/O failure.
  bool OpenForResume(const std::string& path, const CampaignIdentity& expect,
                     std::map<int, JournalEntry>* completed, std::string* error,
                     bool sync = false);

  // Appends one committed seed and flushes (and, when the journal was opened
  // with sync, fdatasyncs). Thread-safe. False on I/O error.
  bool Append(const JournalEntry& entry);

  bool open() const;
  void Close();

  // Parses a journal file. Complete, digest-verified records land in
  // *completed and *valid_end receives the byte offset just past the last
  // complete record (the resume append point). A truncated trailing record
  // is tolerated (dropped); corruption — digest mismatch, malformed or
  // out-of-range fields, duplicate indices — fails the parse.
  static bool Load(const std::string& path, CampaignIdentity* identity,
                   std::map<int, JournalEntry>* completed, long* valid_end,
                   std::string* error);

 private:
  mutable Mutex mu_;  // mutable: open() is logically const
  std::FILE* file_ BR_GUARDED_BY(mu_) = nullptr;
  bool sync_ BR_GUARDED_BY(mu_) = false;
};

}  // namespace byterobust

#endif  // SRC_HARNESS_JOURNAL_H_

// Deterministic exponential backoff with seeded jitter.
//
// Retry pacing for the seed supervisor (src/harness/supervisor.h): delays
// grow geometrically per attempt, are capped, and carry multiplicative
// jitter drawn from an explicitly seeded Rng — the same (seed, attempt)
// pair always yields the same delay, so retry schedules are reproducible
// and unit-testable, while different seeds decorrelate workers that fail
// together (no thundering-herd retries).

#ifndef SRC_HARNESS_BACKOFF_H_
#define SRC_HARNESS_BACKOFF_H_

#include <cstdint>

namespace byterobust {

struct BackoffConfig {
  double base_ms = 5.0;     // delay before the first retry
  double multiplier = 2.0;  // geometric growth per further retry
  double max_ms = 250.0;    // cap on the un-jittered delay
  double jitter = 0.5;      // delay is scaled by U[1 - jitter, 1 + jitter)
};

class BackoffPolicy {
 public:
  // `seed` fixes the jitter stream; mix in a per-task salt so concurrent
  // tasks retrying in lockstep draw different jitter.
  BackoffPolicy(const BackoffConfig& config, std::uint64_t seed);

  // Delay in milliseconds before retry `attempt` (1-based: attempt 1 is the
  // first retry). Pure in (config, seed, attempt).
  double DelayMs(int attempt) const;

 private:
  BackoffConfig config_;
  std::uint64_t seed_;
};

// SplitMix64-style mixer for deriving independent harness seeds from a
// campaign seed plus salts (seed index, attempt number, fault kind).
std::uint64_t HarnessMix(std::uint64_t x);

}  // namespace byterobust

#endif  // SRC_HARNESS_BACKOFF_H_

#include "src/harness/wallclock.h"

#include <chrono>
#include <thread>

namespace byterobust {

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepMs(double ms) {
  if (ms <= 0.0) {
    return;
  }
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace byterobust

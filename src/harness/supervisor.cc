#include "src/harness/supervisor.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "src/common/rng.h"

namespace byterobust {
namespace {

bool ParseProbability(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size() && *out >= 0.0 && *out <= 1.0;
}

bool ParseNonNegativeInt(const std::string& text, int* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size() || value < 0 ||
      value > 1'000'000'000L) {
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

// Per-decision salts: each (index, attempt, kind) triple gets its own Rng so
// fault draws are independent of each other and of --jobs scheduling.
constexpr std::uint64_t kCrashSalt = 0x6372617368ULL;  // "crash"
constexpr std::uint64_t kThrowSalt = 0x7468726f77ULL;  // "throw"
constexpr std::uint64_t kHangSalt = 0x68616e67ULL;     // "hang"

bool FaultStrikes(std::uint64_t seed, int index, int attempt, std::uint64_t salt,
                  double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  Rng rng(HarnessMix(seed ^ HarnessMix(static_cast<std::uint64_t>(index) * 0x9E3779B9ULL ^
                                       static_cast<std::uint64_t>(attempt) * 0x85EBCA6BULL ^
                                       salt)));
  return rng.Bernoulli(p);
}

}  // namespace

bool HarnessFaultSpec::Parse(const std::string& text, HarnessFaultSpec* spec,
                             std::string* error) {
  *spec = HarnessFaultSpec();
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t end = std::min(text.find(',', pos), text.size());
    const std::string part = text.substr(pos, end - pos);
    pos = end + 1;
    if (part.empty()) {
      continue;
    }
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= part.size()) {
      *error = "harness fault spec entry '" + part + "' is not kind:value";
      return false;
    }
    const std::string kind = part.substr(0, colon);
    const std::string value = part.substr(colon + 1);
    bool ok;
    if (kind == "crash") {
      ok = ParseProbability(value, &spec->crash_p);
    } else if (kind == "hang") {
      ok = ParseProbability(value, &spec->hang_p);
    } else if (kind == "throw") {
      ok = ParseProbability(value, &spec->throw_p);
    } else if (kind == "crash_seed") {
      ok = ParseNonNegativeInt(value, &spec->crash_seed);
    } else if (kind == "stop_after") {
      ok = ParseNonNegativeInt(value, &spec->stop_after);
    } else {
      *error = "unknown harness fault kind '" + kind +
               "' (expected crash, hang, throw, crash_seed, or stop_after)";
      return false;
    }
    if (!ok) {
      *error = "harness fault '" + kind + "' has invalid value '" + value + "'";
      return false;
    }
  }
  return true;
}

bool SupervisorConfig::FromEnv(std::uint64_t campaign_seed, SupervisorConfig* config,
                               std::string* error) {
  config->seed = campaign_seed;
  if (const char* retries = std::getenv("BYTEROBUST_SEED_RETRIES")) {
    int value = 0;
    if (!ParseNonNegativeInt(retries, &value)) {
      *error = "BYTEROBUST_SEED_RETRIES must be a non-negative integer, got '" +
               std::string(retries) + "'";
      return false;
    }
    config->max_attempts = 1 + value;
  }
  if (const char* timeout = std::getenv("BYTEROBUST_SEED_TIMEOUT_S")) {
    char* end = nullptr;
    const double value = std::strtod(timeout, &end);
    if (*timeout == '\0' || *end != '\0' || value <= 0.0) {
      *error = "BYTEROBUST_SEED_TIMEOUT_S must be a positive number, got '" +
               std::string(timeout) + "'";
      return false;
    }
    config->timeout_override_s = value;
  }
  if (const char* factor = std::getenv("BYTEROBUST_SEED_TIMEOUT_FACTOR")) {
    char* end = nullptr;
    const double value = std::strtod(factor, &end);
    if (*factor == '\0' || *end != '\0' || value < 1.0) {
      *error = "BYTEROBUST_SEED_TIMEOUT_FACTOR must be >= 1, got '" +
               std::string(factor) + "'";
      return false;
    }
    config->timeout_factor = value;
  }
  if (const char* faults = std::getenv("BYTEROBUST_HARNESS_FAULTS")) {
    if (!HarnessFaultSpec::Parse(faults, &config->faults, error)) {
      return false;
    }
  }
  return true;
}

void InjectHarnessFault(const HarnessFaultSpec& faults, std::uint64_t seed,
                        int index, int attempt, const CancelToken& token) {
  if (!faults.any()) {
    return;
  }
  if (faults.crash_seed == index) {
    throw InjectedFaultError("injected persistent crash on seed index " +
                             std::to_string(index) + " (attempt " +
                             std::to_string(attempt) + ")");
  }
  if (FaultStrikes(seed, index, attempt, kCrashSalt, faults.crash_p)) {
    throw InjectedFaultError("injected crash fault on seed index " +
                             std::to_string(index) + " (attempt " +
                             std::to_string(attempt) + ")");
  }
  if (FaultStrikes(seed, index, attempt, kThrowSalt, faults.throw_p)) {
    throw InjectedFaultError("injected throw fault on seed index " +
                             std::to_string(index) + " (attempt " +
                             std::to_string(attempt) + ")");
  }
  if (FaultStrikes(seed, index, attempt, kHangSalt, faults.hang_p)) {
    // Cooperative hang: spin on the token so the watchdog's cancel converts
    // this into a retryable timeout instead of an abandoned thread.
    while (!token.cancelled()) {
      SleepMs(2.0);
    }
    throw SeedCancelledError("injected hang on seed index " + std::to_string(index) +
                             " (attempt " + std::to_string(attempt) +
                             ") cancelled by watchdog");
  }
}

void SeedSupervisor::RequestStop() {
  if (config_.external_stop != nullptr) {
    config_.external_stop->store(true, std::memory_order_release);
  }
}

bool SeedSupervisor::stop_requested() const {
  return config_.external_stop != nullptr &&
         config_.external_stop->load(std::memory_order_acquire);
}

void SeedSupervisor::NoteCommitted() {
  const int n = committed_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (config_.faults.stop_after >= 0 && n >= config_.faults.stop_after) {
    RequestStop();
  }
}

double SeedSupervisor::AttemptTimeoutS() const {
  if (config_.timeout_override_s > 0.0) {
    return config_.timeout_override_s;
  }
  const double floor_s = std::max(config_.timeout_floor_s, 0.001);
  const MutexLock lock(&mu_);
  if (!have_estimate_) {
    return floor_s;
  }
  return std::max(floor_s, config_.timeout_factor * ewma_seconds_);
}

void SeedSupervisor::NoteDuration(double seconds) {
  const MutexLock lock(&mu_);
  ewma_seconds_ = have_estimate_ ? 0.7 * ewma_seconds_ + 0.3 * seconds : seconds;
  have_estimate_ = true;
}

void SeedSupervisor::BackoffSleep(int index, int retry) const {
  const BackoffPolicy policy(
      config_.backoff,
      HarnessMix(config_.seed ^ static_cast<std::uint64_t>(index) * 0xC2B2AE35ULL));
  SleepMs(policy.DelayMs(retry));
}

std::string SeedSupervisor::WatchdogMessage(double deadline_s) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "seed watchdog fired after %.3fs and the worker did not yield",
                deadline_s);
  return buf;
}

}  // namespace byterobust

#include "src/harness/backoff.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"

namespace byterobust {

std::uint64_t HarnessMix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

BackoffPolicy::BackoffPolicy(const BackoffConfig& config, std::uint64_t seed)
    : config_(config), seed_(seed) {}

double BackoffPolicy::DelayMs(int attempt) const {
  if (attempt < 1 || config_.base_ms <= 0.0) {
    return 0.0;
  }
  const double growth =
      std::pow(std::max(config_.multiplier, 1.0), static_cast<double>(attempt - 1));
  const double capped = std::min(config_.base_ms * growth, config_.max_ms);
  const double jitter = std::clamp(config_.jitter, 0.0, 1.0);
  if (jitter == 0.0) {
    return capped;
  }
  // One draw per (seed, attempt): reconstructing the generator keeps the
  // policy stateless, so concurrent callers never perturb each other.
  Rng rng(HarnessMix(seed_ ^ (static_cast<std::uint64_t>(attempt) * 0x9E3779B9ULL)));
  return capped * rng.Uniform(1.0 - jitter, 1.0 + jitter);
}

}  // namespace byterobust

// SDC localization via dual-phase replay: reproduces the paper's Fig. 6.
//
// A silent-data-corruption machine (#13 of 24) produces NaN losses that no
// stop-time test can attribute. Algorithm 1 partitions the machines into
// horizontal groups (by floor(id/m)) and vertical groups (by id mod n),
// replays a reduced job on each group, and intersects the failing groups.
//
// Build & run:  ./build/examples/sdc_localization

#include <cstdio>
#include <set>

#include "src/replay/dual_phase_replay.h"

using namespace byterobust;

namespace {

void PrintGroups(const DualPhaseReplay& replay, bool horizontal, int faulty_group,
                 MachineId sdc_machine) {
  for (int g = 0; g < replay.n(); ++g) {
    const auto members = horizontal ? replay.HorizontalGroup(g) : replay.VerticalGroup(g);
    std::printf("  %c%d: [", horizontal ? 'H' : 'V', g);
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i] == sdc_machine) {
        std::printf("%s*%d*", i ? "," : "", members[i]);
      } else {
        std::printf("%s%d", i ? "," : "", members[i]);
      }
    }
    std::printf("]%s\n", g == faulty_group ? "   <-- replay reproduces the fault" : "");
  }
}

}  // namespace

int main() {
  // Fig. 6 parameters: z = 24 machines, group size m = 4 (a multiple of the
  // PP size so intra-group communication stays representative), n = 6.
  const int z = 24;
  const int m = 4;
  const MachineId sdc_machine = 13;
  DualPhaseReplay replay(z, m);
  std::printf("dual-phase replay: z=%d machines, m=%d, n=%d (expected |S| = %d)\n", z, m,
              replay.n(), replay.ExpectedSuspectCardinality());
  std::printf("ground truth: machine #%d has a silent data corruption\n\n", sdc_machine);

  // SDC is stochastic (Sec. 9); here it reproduces 90% of the time per replay.
  Rng rng(3);
  auto oracle = DualPhaseReplay::FaultOracle({sdc_machine}, 0.9, &rng);

  std::printf("phase 1 - horizontal grouping (machines partitioned by id / m):\n");
  const ReplayOutcome outcome = replay.Locate(oracle, Minutes(10));
  PrintGroups(replay, /*horizontal=*/true, outcome.faulty_horizontal, sdc_machine);

  std::printf("\nphase 2 - vertical grouping (machines partitioned by id mod n):\n");
  PrintGroups(replay, /*horizontal=*/false, outcome.faulty_vertical, sdc_machine);

  std::printf("\nconstrained system:  floor(x / %d) == %d  and  x mod %d == %d\n", m,
              outcome.faulty_horizontal, replay.n(), outcome.faulty_vertical);
  if (outcome.found) {
    std::printf("solution: S = {");
    for (std::size_t i = 0; i < outcome.suspects.size(); ++i) {
      std::printf("%s%d", i ? "," : "", outcome.suspects[i]);
    }
    std::printf("}  -> evicting and restarting on warm standbys\n");
    std::printf("total diagnosis time: %s (two concurrent replay rounds)\n",
                FormatDuration(outcome.elapsed).c_str());
    std::printf("\nCompare: the paper reports >8 hours of offline stress testing to find\n"
                "one SDC machine without this procedure (Sec. 2.2).\n");
  } else {
    std::printf("fault did not reproduce in one of the phases; ByteRobust would fall\n"
                "back to human diagnosis.\n");
  }
  return outcome.found ? 0 : 1;
}

// Quickstart: bring up a ByteRobust-managed training job on a simulated
// 16-machine cluster, break a GPU mid-training, and watch the automated
// fault-tolerance pipeline detect, evict and recover.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/core/byterobust_system.h"
#include "src/faults/fault_injector.h"

using namespace byterobust;

int main() {
  // 1. Describe the training job: TP=2 x PP=4 x DP=4 on 16 two-GPU machines.
  SystemConfig config;
  config.job.name = "quickstart-7B";
  config.job.model_params_b = 7.0;
  config.job.parallelism.tp = 2;
  config.job.parallelism.pp = 4;
  config.job.parallelism.dp = 4;
  config.job.parallelism.gpus_per_machine = 2;
  config.job.base_step_time = Seconds(10);
  config.seed = 2024;
  config.spare_machines = 4;

  // 2. Build the system: cluster + job + monitor + diagnoser + warm standby
  //    pool + checkpoint manager + robust controller, all wired together.
  ByteRobustSystem sys(config);
  sys.Start();

  // 3. Train for half an hour of simulated time.
  sys.sim().RunUntil(Minutes(30));
  std::printf("t=%s  step=%lld  MFU=%.2f  ETTR=%.3f\n",
              FormatDuration(sys.sim().Now()).c_str(),
              static_cast<long long>(sys.job().max_step_reached()), sys.job().CurrentMfu(),
              sys.ettr().CumulativeEttr(sys.sim().Now()));

  // 4. Break a GPU: machine 5 loses a device and the job crashes.
  std::printf("\n--- injecting GPU-unavailable fault on machine 5 ---\n");
  Incident incident;
  incident.id = 1;
  incident.symptom = IncidentSymptom::kGpuUnavailable;
  incident.root_cause = RootCause::kInfrastructure;
  incident.faulty_machines = {5};
  incident.gpu_index = 1;
  incident.inject_time = sys.sim().Now();
  FaultInjector::ApplyToCluster(incident, &sys.cluster());
  sys.controller().NotifyIncidentInjected(incident);
  sys.job().Crash();

  // 5. Let ByteRobust handle it: the 10-second GPU inspection spots the lost
  //    device, the controller evicts machine 5, wakes a pre-validated warm
  //    standby, reloads the in-memory checkpoint and restarts.
  sys.sim().RunUntil(Hours(1));

  std::printf("job state            : %s (run #%d)\n", JobRunStateName(sys.job().state()),
              sys.job().run_count());
  std::printf("machine 5 blacklisted: %s\n", sys.cluster().IsBlacklisted(5) ? "yes" : "no");
  std::printf("slot 5 now served by : machine %d\n", sys.cluster().MachineAtSlot(5));
  std::printf("training progress    : step %lld\n",
              static_cast<long long>(sys.job().max_step_reached()));

  // 6. Inspect the resolution record: detection / localization / failover.
  for (const IncidentResolution& res : sys.controller().log().entries()) {
    std::printf("\nresolution: %s via %s\n", SymptomName(res.incident.symptom),
                MechanismName(res.mechanism));
    std::printf("  detection    : %s\n", FormatDuration(res.DetectionTime()).c_str());
    std::printf("  localization : %s\n", FormatDuration(res.LocalizationTime()).c_str());
    std::printf("  failover     : %s\n", FormatDuration(res.FailoverTime()).c_str());
    std::printf("  total        : %s\n", FormatDuration(res.TotalUnproductive()).c_str());
  }
  std::printf("\nfinal ETTR over the hour: %.3f\n",
              sys.ettr().CumulativeEttr(sys.sim().Now()));
  std::printf("recompute lost to the failure: %s (every-step checkpointing)\n",
              FormatDuration(sys.ettr().recompute_time()).c_str());
  return 0;
}

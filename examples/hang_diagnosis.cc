// Hang diagnosis walkthrough: reproduces the paper's Fig. 7 end to end.
//
// A backward-communication hang is seeded at rank 30 (machine 15, the last
// pipeline stage) of a TP=2 x PP=4 x DP=4 job. The on-demand tracer parses
// each pod's process tree, captures stacks from every training-related
// process, and the runtime analyzer clusters them by string matching: the
// dominant group is healthy, the outliers share one PP group, and that group
// is over-evicted.
//
// Build & run:  ./build/examples/hang_diagnosis

#include <cstdio>
#include <map>

#include "src/analyzer/aggregation.h"
#include "src/tracer/process_tree.h"
#include "src/tracer/stack_synth.h"

using namespace byterobust;

int main() {
  ParallelismConfig par;
  par.tp = 2;
  par.pp = 4;
  par.dp = 4;
  par.gpus_per_machine = 2;
  Topology topo(par);
  std::printf("job topology: %s\n", par.ToString().c_str());

  // (1) Parse the process tree of one pod (Fig. 7 step 1).
  const ProcessTree tree = ProcessTree::BuildPodTree(/*machine=*/0, par.gpus_per_machine);
  std::printf("\n(1) process tree of pod 0 (%zu processes, %zu training-related):\n",
              tree.nodes().size(), tree.TrainingProcesses().size());
  for (const ProcessNode& node : tree.nodes()) {
    std::printf("  pid %2d (parent %2d)  %-34s %s\n", node.pid, node.parent_pid,
                node.cmdline.c_str(), node.kind ? ProcessKindName(*node.kind) : "");
  }

  // (2) Seed the hang at rank 30 and capture stacks from every rank.
  const Rank culprit = 30;
  std::printf("\n(2) rank %d (machine %d, pp stage 3) stalls in the tensor-parallel\n",
              culprit, topo.MachineOfRank(culprit));
  std::printf("    all-gather during backward; capturing stacks...\n\n");
  const auto stacks = SynthesizeHangStacks(topo, culprit, HangSite::kTensorCollective);

  AggregationAnalyzer analyzer;
  const AggregationResult result = analyzer.Analyze(stacks, topo);
  std::printf("stack aggregation groups (dominant = healthy):\n");
  for (const StackGroup& group : result.groups) {
    std::printf("--- group of %zu ranks on machines [", group.ranks.size());
    for (std::size_t i = 0; i < group.machines.size(); ++i) {
      std::printf("%s%d", i ? "," : "", group.machines[i]);
    }
    std::printf("] %s\n%s", group.healthy ? "(healthy)" : "(OUTLIER)",
                group.representative.ToString().c_str());
  }

  // (3) The outliers' shared parallel group is isolated and over-evicted.
  std::printf("(3) outlier machines: [");
  for (std::size_t i = 0; i < result.outlier_machines.size(); ++i) {
    std::printf("%s%d", i ? "," : "", result.outlier_machines[i]);
  }
  std::printf("]\n");
  if (result.found_group) {
    std::printf("    shared parallel group: one %s group -> over-evicting machines [",
                GroupKindName(result.isolated_group.kind));
    for (std::size_t i = 0; i < result.machines_to_evict.size(); ++i) {
      std::printf("%s%d", i ? "," : "", result.machines_to_evict[i]);
    }
    std::printf("]\n");
  }
  std::printf("\nNo exact root-cause pinpointing needed: the suspects are isolated at the\n"
              "fault-domain (parallel group) boundary and training restarts on warm\n"
              "standbys, exactly as in the paper's evaluation-hang case study (Sec. 5.2).\n");
  return 0;
}

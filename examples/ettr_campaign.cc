// Production-style campaign: a multi-week pretraining job on 9,600 GPUs with
// the paper's fault mix, continuous code evolution through hot updates, and
// the full ByteRobust stack keeping ETTR high (Sec. 8.1).
//
// Build & run:  ./build/examples/ettr_campaign [days]

#include <cstdio>
#include <cstdlib>

#include "src/core/production_presets.h"

using namespace byterobust;

int main(int argc, char** argv) {
  const double days = argc > 1 ? std::atof(argv[1]) : 14.0;
  ScenarioConfig config = DenseCampaignConfig(days, /*seed=*/91);
  std::printf("running %.0f-day campaign: %s\n", days, config.system.job.ToString().c_str());
  std::printf("fault process: one infrastructure/implicit incident every ~%.1f h at this scale\n",
              ToHours(FaultInjectorConfig{}.reference_mtbf) * 2048.0 /
                  config.system.job.parallelism.num_machines());

  Scenario scenario(config);
  scenario.Run();
  ByteRobustSystem& sys = scenario.system();

  std::printf("\n== campaign summary ==\n");
  std::printf("incidents injected : %d (+ %d engineering updates, %d with latent bugs)\n",
              scenario.stats().incidents_injected, scenario.stats().updates_submitted,
              scenario.stats().buggy_updates);
  std::printf("training runs      : %d\n", sys.job().run_count());
  std::printf("steps completed    : %lld\n",
              static_cast<long long>(sys.job().max_step_reached()));
  std::printf("machines evicted   : %d\n", sys.controller().evictions_total());
  std::printf("cumulative ETTR    : %.3f  (paper: up to 0.97)\n",
              sys.ettr().CumulativeEttr(sys.sim().Now()));
  std::printf("recompute overhead : %s\n", FormatDuration(sys.ettr().recompute_time()).c_str());

  const double min_mfu =
      sys.mfu_series().samples().empty() ? 1.0 : sys.mfu_series().samples().front().mfu;
  const double max_mfu = sys.mfu_series().MaxMfu();
  std::printf("relative MFU gain  : %.2fx (hot updates raised MFU from %.2f to %.2f)\n",
              max_mfu / min_mfu, min_mfu, max_mfu);

  std::printf("\nresolved incidents by mechanism:\n");
  const ResolutionLog& log = sys.controller().log();
  for (ResolutionMechanism mech :
       {ResolutionMechanism::kAutoFtEvictRestart, ResolutionMechanism::kAutoFtHotUpdate,
        ResolutionMechanism::kAnalyzerEvictRestart, ResolutionMechanism::kRollback,
        ResolutionMechanism::kReattempt, ResolutionMechanism::kDualPhaseReplay,
        ResolutionMechanism::kUnresolvedHuman}) {
    const int n = log.CountBy(mech);
    if (n > 0) {
      std::printf("  %-18s %d\n", MechanismName(mech), n);
    }
  }

  std::printf("\nsliding-window ETTR (1 h window) across the campaign:\n");
  const SimTime end = sys.sim().Now();
  for (int pct = 10; pct <= 100; pct += 10) {
    const SimTime t = end / 100 * pct;
    const double sliding = sys.ettr().SlidingEttr(t, Hours(1));
    const int bars = static_cast<int>(sliding * 50.0);
    std::printf("  %3d%% |%-50.*s| %.2f\n", pct, bars,
                "##################################################", sliding);
  }
  return 0;
}

// Checkpoint subsystem tour: the Fig. 8 operation schedule, the Fig. 9
// cross-parallel-group backup plan, and load-time resharding when the
// parallelism configuration changes across a restart (Sec. 2.1's
// long-context stage expansion).
//
// Build & run:  ./build/examples/checkpoint_tour

#include <cstdio>

#include "src/ckpt/backup_strategy.h"
#include "src/ckpt/op_schedule.h"
#include "src/ckpt/reshard.h"
#include "src/ckpt/size_model.h"
#include "src/training/job_config.h"

using namespace byterobust;

int main() {
  // --- 1. Fig. 8: one training step with every-iteration checkpointing -----
  const JobConfig job = Table5Job70B(128);
  OpScheduleInputs in;
  in.forward = Seconds(1.4);
  in.backward = Seconds(2.6);
  in.optimizer = Seconds(0.3);
  in.model_bytes = CheckpointSizeModel::ModelBytesPerRank(job);
  in.optimizer_bytes = CheckpointSizeModel::OptimizerBytesPerRank(job);
  const OpSchedule schedule = BuildCheckpointSchedule(in, true);
  std::printf("(1) Fig. 8 operation schedule for one %s step:\n%s", job.name.c_str(),
              schedule.Render().c_str());
  std::printf("    checkpoint stall added to the step: %s (relative MFU %.2f%%)\n\n",
              FormatDuration(schedule.BlockingTime()).c_str(),
              100.0 * ToSeconds(schedule.step_time_without_ckpt) /
                  ToSeconds(schedule.step_time_with_ckpt));

  // --- 2. Fig. 9: cross-parallel-group backups ------------------------------
  ParallelismConfig par;
  par.tp = 2;
  par.pp = 4;
  par.dp = 2;
  par.gpus_per_machine = 2;
  const Topology topo(par);
  BackupPlan plan(topo);
  std::printf("(2) Fig. 9 backup plan (%s):\n", par.ToString().c_str());
  for (Rank r : {8, 9, 0, 1}) {
    std::printf("    rank %2d (machine %d) backs up on rank %2d (machine %d)\n", r,
                topo.MachineOfRank(r), plan.TargetOf(r), topo.MachineOfRank(plan.TargetOf(r)));
  }
  std::printf("    cross-group invariant holds: %s\n",
              plan.SatisfiesCrossGroupInvariant(topo) ? "yes" : "no");
  const ParallelGroup pp_group = topo.Groups(GroupKind::kPipeline)[1];
  std::printf("    survives over-evicting PP group %d (machines", pp_group.index);
  for (MachineId m : topo.MachinesOfGroup(pp_group)) {
    std::printf(" %d", m);
  }
  std::printf("): %s\n\n", plan.SurvivesGroupEviction(topo, pp_group) ? "yes" : "no");

  // --- 3. Load-time resharding: DP expands 2 -> 4 ---------------------------
  ParallelismConfig bigger = par;
  bigger.dp = 4;
  const std::int64_t model_bytes = 14LL << 30;   // 14 GiB of weights
  const std::int64_t opt_bytes = 84LL << 30;     // 84 GiB of optimizer state
  ReshardPlanner planner(par, bigger, model_bytes, opt_bytes);
  std::printf("(3) resharding %s -> %s:\n", par.ToString().c_str(), bigger.ToString().c_str());
  for (Rank r : {0, 17}) {
    std::printf("    new rank %2d optimizer reads:", r);
    for (const ShardSource& s : planner.OptimizerSourcesFor(r)) {
      std::printf(" [old rank %d: %.2f GiB]", s.old_rank,
                  static_cast<double>(s.range.size()) / (1 << 30));
    }
    std::printf("\n");
  }
  const ReshardStats stats = planner.Stats();
  std::printf("    total moved: %.1f GiB optimizer, %.1f GiB model (x%d replicas), "
              "max fan-in %.0f sources/rank\n",
              static_cast<double>(stats.optimizer_bytes_moved) / (1 << 30),
              static_cast<double>(stats.model_bytes_moved) / (1 << 30), bigger.dp,
              stats.max_fan_in);
  return 0;
}
